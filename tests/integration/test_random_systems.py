"""Property-based verification of the core results on random systems.

Hypothesis draws seeds and observability profiles; the deterministic
generator in :mod:`repro.testing` turns them into small probabilistic
systems; the paper's invariants must hold on every one.
"""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    FutureAssignment,
    OpponentAssignment,
    PostAssignment,
    PriorAssignment,
    ProbabilityAssignment,
    check_req2,
    conditioning_identity_everywhere,
    refinement_partition,
)
from repro.testing import parity_fact, random_psys

SLOW = settings(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

seeds = st.integers(0, 200)
# "parity" observers can repeat a local state at different times, which
# breaks HV89-synchrony; only clock/full profiles are synchronous.
sync_profiles = st.sampled_from(
    [("clock", "full"), ("full", "clock"), ("clock", "clock"), ("full", "full")]
)
any_profiles = st.sampled_from(
    [
        ("clock", "full"),
        ("blind", "clock"),
        ("parity", "clock"),
        ("blind", "full"),
    ]
)


def build(seed, profile, trees=1, depth=2):
    return random_psys(
        seed, num_trees=trees, depth=depth, observability=profile
    )


@SLOW
@given(seeds, any_profiles)
def test_standard_assignments_satisfy_requirements(seed, profile):
    psys = build(seed, profile)
    for ssa in (PostAssignment(psys), FutureAssignment(psys), PriorAssignment(psys)):
        for agent in psys.system.agents:
            for point in psys.system.points:
                assert check_req2(psys, point, ssa.sample_space(agent, point)) > 0


@SLOW
@given(seeds, any_profiles)
def test_named_assignments_are_standard(seed, profile):
    psys = build(seed, profile)
    for ssa in (
        PostAssignment(psys),
        FutureAssignment(psys),
        OpponentAssignment(psys, 1),
        PriorAssignment(psys),
    ):
        assert ssa.is_standard()


@SLOW
@given(seeds, any_profiles)
def test_lattice_chain(seed, profile):
    psys = build(seed, profile)
    fut = FutureAssignment(psys)
    opp = OpponentAssignment(psys, 1)
    post = PostAssignment(psys)
    assert fut.leq(opp)
    assert opp.leq(post)


@SLOW
@given(seeds, sync_profiles)
def test_proposition4_refinement(seed, profile):
    psys = build(seed, profile)
    fut = FutureAssignment(psys)
    post = PostAssignment(psys)
    for agent in psys.system.agents:
        for point in psys.system.points:
            blocks = refinement_partition(fut, post, agent, point)
            assert frozenset().union(*blocks) == post.sample_space(agent, point)


@SLOW
@given(seeds, sync_profiles)
def test_proposition5_conditioning(seed, profile):
    psys = build(seed, profile)
    lower = ProbabilityAssignment(FutureAssignment(psys))
    higher = ProbabilityAssignment(PostAssignment(psys))
    assert conditioning_identity_everywhere(lower, higher)


@SLOW
@given(seeds, sync_profiles)
def test_consistency_axiom(seed, profile):
    # K_i phi implies Pr_i(phi) = 1 under any consistent assignment
    psys = build(seed, profile)
    post = ProbabilityAssignment(PostAssignment(psys))
    fact = parity_fact()
    for agent in psys.system.agents:
        for point in psys.system.points:
            if psys.system.knows(agent, point, fact):
                assert post.inner_probability(agent, point, fact) == 1


@SLOW
@given(seeds, sync_profiles)
def test_theorem9_monotone_intervals(seed, profile):
    psys = build(seed, profile)
    lower = ProbabilityAssignment(FutureAssignment(psys))
    higher = ProbabilityAssignment(PostAssignment(psys))
    fact = parity_fact()
    for agent in psys.system.agents:
        for point in psys.system.points:
            low_lo, low_hi = lower.knowledge_interval(agent, point, fact)
            high_lo, high_hi = higher.knowledge_interval(agent, point, fact)
            assert low_lo <= high_lo <= high_hi <= low_hi


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seeds)
def test_theorem7_on_random_synchronous_systems(seed):
    from repro.betting import verify_theorem7

    psys = build(seed, ("clock", "full"))
    report = verify_theorem7(psys, 0, 1, parity_fact())
    assert report.holds, report.details


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seeds)
def test_inner_outer_bracket_every_assignment(seed):
    # inner <= outer at every site, for every standard assignment
    psys = build(seed, ("blind", "clock"))
    fact = parity_fact()
    for ssa in (PostAssignment(psys), PriorAssignment(psys)):
        pa = ProbabilityAssignment(ssa)
        for agent in psys.system.agents:
            for point in psys.system.points:
                inner, outer = pa.probability_interval(agent, point, fact)
                assert 0 <= inner <= outer <= 1


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seeds)
def test_proposition10_on_random_async_systems(seed):
    """P_post and P_pts agree on K^[a,b] for randomly generated async systems."""
    from repro.core import verify_proposition10

    psys = build(seed, ("blind", "clock"), depth=2)
    post = ProbabilityAssignment(PostAssignment(psys))
    assert verify_proposition10(psys, post, 0, parity_fact(), enumeration_limit=500)
