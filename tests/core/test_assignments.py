"""Sample-space assignments, REQ1/REQ2, induced spaces (Propositions 1-2)."""

from fractions import Fraction

import pytest

from repro.core import (
    ExplicitAssignment,
    Fact,
    FunctionAssignment,
    ProbabilityAssignment,
    check_req1,
    check_req2,
    check_req2_state_generated,
    induced_point_space,
    project_runs,
)
from repro.core.standard import PostAssignment
from repro.errors import NotMeasurableError, Req1Error, Req2Error
from repro.testing import random_psys, two_agent_coin_psys


@pytest.fixture(scope="module")
def psys():
    return two_agent_coin_psys()


@pytest.fixture(scope="module")
def two_trees():
    return random_psys(seed=9, num_trees=2, depth=1, observability=("blind", "clock"))


class TestRequirements:
    def test_req1_same_tree_ok(self, psys):
        point = psys.system.points[0]
        tree = check_req1(psys, point, psys.system.points_at_time(0))
        assert tree is psys.tree_of(point)

    def test_req1_cross_tree_rejected(self, two_trees):
        first_tree, second_tree = two_trees.trees
        point = first_tree.points[0]
        mixed = {first_tree.points[0], second_tree.points[0]}
        with pytest.raises(Req1Error):
            check_req1(two_trees, point, mixed)

    def test_req2_positive_measure(self, psys):
        point = psys.system.points[0]
        assert check_req2(psys, point, {point}) > 0

    def test_req2_empty_sample_rejected(self, psys):
        point = psys.system.points[0]
        with pytest.raises(Req2Error):
            check_req2(psys, point, frozenset())

    def test_proposition1_state_generated_samples(self, psys):
        # every time-slice of a tree is state generated -> REQ2 follows
        for time in (0, 1):
            sample = frozenset(psys.system.points_at_time(time))
            point = next(iter(sample))
            assert check_req2_state_generated(psys, point, sample)

    def test_proposition1_rejects_non_state_generated(self):
        shared = random_psys(seed=3, num_trees=1, depth=1)
        roots = [p for p in shared.system.points if p.time == 0]
        assert len(roots) >= 2
        assert not check_req2_state_generated(shared, roots[0], {roots[0]})

    def test_proposition1_holds_under_any_relabeling(self, psys):
        # Prop 1 is independent of the transition probability assignment.
        tree = psys.trees[0]
        relabeled = tree.relabel(
            lambda parent, child: Fraction(1, len(tree.children(parent)))
        )
        from repro.trees import single_tree_system

        new_psys = single_tree_system(relabeled)
        sample = frozenset(new_psys.system.points_at_time(1))
        assert check_req2_state_generated(new_psys, next(iter(sample)), sample)


class TestProjection:
    def test_project_runs(self, psys):
        sample = frozenset(psys.system.points)
        one_run = psys.system.runs[0]
        projected = project_runs([one_run], sample)
        assert projected == frozenset(point for point in sample if point.run == one_run)


class TestInducedSpace:
    def test_is_probability_space(self, psys):
        # Proposition 2: the construction yields a genuine probability space.
        point = psys.system.points[0]
        sample = frozenset(psys.system.points_at_time(1))
        space = induced_point_space(psys, point, sample)
        assert space.measure(space.outcomes) == 1
        assert space.outcomes == sample

    def test_one_point_per_run_gives_powerset(self, psys):
        point = psys.system.points[0]
        sample = frozenset(psys.system.points_at_time(1))
        space = induced_point_space(psys, point, sample)
        assert space.has_powerset_algebra()

    def test_multiple_points_per_run_group_into_atoms(self, psys):
        point = psys.system.points[0]
        sample = frozenset(psys.system.points)  # both times of both runs
        space = induced_point_space(psys, point, sample)
        assert len(space.atoms) == 2  # one atom per run
        assert all(len(atom) == 2 for atom in space.atoms)

    def test_measure_is_conditional(self, psys):
        # sample = one full run's points: conditioning renormalises to 1.
        point = psys.system.points[0]
        run = psys.system.runs[0]
        sample = frozenset(run.points())
        space = induced_point_space(psys, point, sample)
        assert space.measure(sample) == 1


class TestAssignmentContainers:
    def test_explicit_assignment_defaults_to_singleton(self, psys):
        assignment = ExplicitAssignment(psys, {})
        point = psys.system.points[0]
        assert assignment.sample_space(0, point) == frozenset([point])

    def test_explicit_assignment_strict_mode(self, psys):
        assignment = ExplicitAssignment(psys, {}, default_to_singleton=False)
        with pytest.raises(KeyError):
            assignment.sample_space(0, psys.system.points[0])

    def test_function_assignment(self, psys):
        assignment = FunctionAssignment(psys, lambda agent, point: [point])
        point = psys.system.points[0]
        assert assignment.sample_space(1, point) == frozenset([point])


class TestProbabilityAssignment:
    @pytest.fixture(scope="class")
    def post(self, psys):
        return ProbabilityAssignment(PostAssignment(psys))

    @pytest.fixture(scope="class")
    def heads(self):
        return Fact.about_local_state(
            0, lambda local: local[0] == "tosser-heads", name="heads"
        )

    def test_probability_requires_measurability(self, psys, heads):
        # For the blind observer with a whole-tree sample space, "heads"
        # splits run atoms.
        whole = FunctionAssignment(
            psys, lambda agent, point: psys.tree_of(point).points
        )
        assignment = ProbabilityAssignment(whole)
        point = psys.system.points[0]
        with pytest.raises(NotMeasurableError):
            assignment.probability(1, point, heads)
        inner = assignment.inner_probability(1, point, heads)
        outer = assignment.outer_probability(1, point, heads)
        assert inner == 0 and outer == Fraction(1, 2)

    def test_interval_consistent_with_bounds(self, psys, post, heads):
        for agent in psys.system.agents:
            for point in psys.system.points:
                inner, outer = post.probability_interval(agent, point, heads)
                assert inner == post.inner_probability(agent, point, heads)
                assert outer == post.outer_probability(agent, point, heads)

    def test_knows_probability_at_least(self, psys, post, heads):
        time1 = psys.system.points_at_time(1)
        c = time1[0]
        assert post.knows_probability_at_least(1, c, heads, Fraction(1, 2))
        assert not post.knows_probability_at_least(1, c, heads, Fraction(2, 3))

    def test_knows_interval(self, psys, post, heads):
        c = psys.system.points_at_time(1)[0]
        assert post.knowledge_interval(1, c, heads) == (
            Fraction(1, 2),
            Fraction(1, 2),
        )
        assert post.knows_probability_interval(1, c, heads, "1/2", "1/2")
        assert not post.knows_probability_interval(1, c, heads, "2/3", "1")

    def test_space_cache_shared_across_uniform_points(self, psys, post):
        time1 = psys.system.points_at_time(1)
        first = post.space(1, time1[0])
        second = post.space(1, time1[1])
        assert first is second  # same sample -> same cached space

    def test_measurability_everywhere(self, psys, post, heads):
        assert post.is_measurable(heads)
