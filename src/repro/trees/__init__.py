"""Computation trees: the Section 3 substrate.

One labeled tree per type-1 adversary; the tree induces the probability
space on its runs, and :class:`ProbabilisticSystem` collects the trees into
the object every later construction (assignments, betting, logic) consumes.
"""

from .builder import (
    Env,
    build_tree,
    chance_step,
    deterministic_step,
    halt,
    tree_from_trace_distribution,
)
from .probabilistic_system import ProbabilisticSystem, single_tree_system
from .serialize import (
    system_from_json,
    system_to_json,
    tree_from_dict,
    tree_to_dict,
)
from .tree import ComputationTree
from .visualize import run_table, system_summary, tree_to_dot

__all__ = [
    "ComputationTree",
    "ProbabilisticSystem",
    "single_tree_system",
    "Env",
    "build_tree",
    "halt",
    "deterministic_step",
    "chance_step",
    "tree_from_trace_distribution",
    "tree_to_dict",
    "tree_from_dict",
    "system_to_json",
    "system_from_json",
    "tree_to_dot",
    "run_table",
    "system_summary",
]
