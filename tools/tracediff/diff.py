"""Diff engine for observability artifacts (content vs. timing).

The central design split: a diff separates *content* -- counters, event
payloads, exact ``"p/q"`` probabilities, derivation trees -- from
*timing* -- ``ts`` stamps, span ``seconds``, sequence numbers.  Content
is deterministic under the repo's seeded pipelines, so any content
divergence between two runs of the same configuration is a regression;
timing drifts with the machine and is reported as ratios but never
treated as divergence.
"""

from __future__ import annotations

import json
import re
from fractions import Fraction
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ProvenanceError, TraceError
from repro.obs.audit import AUDIT_SCHEMA, AuditBundle, read_audit_bundle
from repro.obs.derivstore import EXPLAIN_SCHEMA_2, decode_derivation
from repro.obs.provenance import (
    EXPLAIN_SCHEMA,
    Derivation,
    DerivationNode,
    derivation_from_json,
)
from repro.obs.snapshot import METRICS_SCHEMA, read_snapshots
from repro.obs.trace import TRACE_SCHEMA, read_trace

__all__ = [
    "BENCH_SCHEMA",
    "diff_artifacts",
    "diff_audit",
    "diff_bench",
    "diff_derivations",
    "diff_explain_dag",
    "diff_metrics",
    "diff_traces",
    "load_artifact",
    "render_diff",
]

#: Benchmark-report schema this tool understands (``scripts/collect_bench``).
BENCH_SCHEMA = "repro-bench/2"

#: Record keys that vary run to run without the content differing: the
#: wall-clock quarantine (``ts``, ``seconds``) plus bookkeeping ids
#: (``seq``, ``span``, ``parent``, and ``repro-metrics/1``'s ``pid``)
#: that shift when unrelated records are interleaved or the process
#: changes.
VOLATILE_KEYS = frozenset({"seq", "ts", "span", "parent", "seconds", "pid"})

#: Worker pids are assigned by the OS, so per-worker counter names
#: (``worker.12345.kernel.cache_hits``) differ between otherwise
#: identical runs.  The pool harvests envelopes in deterministic task
#: order and each shipped delta is the task's own deterministic work, so
#: masking the pid restores content comparability.
_WORKER_PID = re.compile(r"^worker\.\d+\.")

#: ``sweep_progress`` fields that are wall-clock/rusage readings, not
#: content.
_PROGRESS_TIMING_FIELDS = frozenset({"elapsed_seconds", "maxrss_kb"})

#: Gauges whose values are machine measurements, not content: keep the
#: record (stream alignment is content) but blank the reading.
_TIMING_GAUGES = frozenset({"engine.maxrss_kb"})


def _mask_worker(name: str) -> str:
    return _WORKER_PID.sub("worker.[pid].", name)


# ----------------------------------------------------------------------
# Loading / format detection
# ----------------------------------------------------------------------


def load_artifact(path: str) -> Tuple[str, Any]:
    """Load ``path`` and auto-detect its format.

    Returns ``(kind, payload)`` where ``kind`` is ``"trace"`` (payload: a
    record list from :func:`repro.obs.trace.read_trace`), ``"explain"``
    (payload: a :class:`~repro.obs.provenance.Derivation`, from either
    ``repro-explain/1`` or a single-root ``repro-explain/2`` document),
    ``"explain-dag"`` (payload: a multi-root ``repro-explain/2``
    document, kept in table form), ``"audit"`` (payload: an
    :class:`~repro.obs.audit.AuditBundle`), ``"bench"``
    (payload: the decoded ``repro-bench/2`` document), or ``"metrics"``
    (payload: a record list from :func:`repro.obs.snapshot.read_snapshots`).
    Raises :class:`~repro.errors.TraceError` or
    :class:`~repro.errors.ProvenanceError` when the file matches no
    known schema.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        document = None
    if isinstance(document, dict):
        schema = document.get("schema")
        if schema == EXPLAIN_SCHEMA:
            return "explain", derivation_from_json(document)
        if schema == EXPLAIN_SCHEMA_2:
            if "roots" in document:
                return "explain-dag", document
            return "explain", decode_derivation(document)
        if schema == AUDIT_SCHEMA and document.get("type") == "header":
            # A header-only bundle: an audited sweep that was killed
            # before its first leaf.  Still a valid (empty) bundle.
            return "audit", read_audit_bundle(path)
        if schema == BENCH_SCHEMA:
            if not isinstance(document.get("benchmarks"), list):
                raise TraceError(
                    f"{path!r}: {BENCH_SCHEMA} document has no 'benchmarks' list"
                )
            return "bench", document
        if schema == TRACE_SCHEMA and document.get("type") == "header":
            # A header-only trace is a single JSON object and a valid
            # one-line JSONL file at the same time; treat it as a trace.
            return "trace", read_trace(text.splitlines())
        if schema == METRICS_SCHEMA and document.get("type") == "header":
            return "metrics", read_snapshots(text.splitlines())
        raise TraceError(
            f"{path!r}: unrecognised artifact schema {schema!r} "
            f"(expected {TRACE_SCHEMA!r}, {EXPLAIN_SCHEMA!r}, "
            f"{EXPLAIN_SCHEMA_2!r}, {AUDIT_SCHEMA!r}, "
            f"{BENCH_SCHEMA!r}, or {METRICS_SCHEMA!r})"
        )
    # Multi-line JSONL: the header's schema field says which stream it is.
    first_line = next((line for line in text.splitlines() if line.strip()), "")
    try:
        header = json.loads(first_line)
    except json.JSONDecodeError:
        header = None
    if isinstance(header, dict) and header.get("schema") == METRICS_SCHEMA:
        return "metrics", read_snapshots(text.splitlines())
    if isinstance(header, dict) and header.get("schema") == AUDIT_SCHEMA:
        return "audit", read_audit_bundle(path)
    return "trace", read_trace(text.splitlines())


# ----------------------------------------------------------------------
# Normalisation
# ----------------------------------------------------------------------


def normalize_record(record: Mapping[str, Any]) -> Dict[str, Any]:
    """A trace record with its volatile (timing/bookkeeping) keys removed.

    What remains is the deterministic content two identically-seeded
    runs must agree on byte for byte.  Cross-process telemetry records
    get the same treatment at finer grain: worker pids are masked out of
    counter/gauge names and ``worker_obs_delta`` fields (the OS assigns
    them), ``sweep_progress`` drops its wall-clock/rusage fields, and
    shipped span timings reduce to their counts.
    """
    normalized = {
        key: value for key, value in record.items() if key not in VOLATILE_KEYS
    }
    if normalized.get("type") in ("counter", "gauge") and "name" in normalized:
        normalized["name"] = _mask_worker(str(normalized["name"]))
        if normalized["type"] == "gauge" and normalized["name"] in _TIMING_GAUGES:
            normalized["value"] = None
    elif normalized.get("type") == "event":
        fields = normalized.get("fields")
        if isinstance(fields, Mapping):
            kind = normalized.get("kind")
            if kind == "worker_obs_delta":
                fields = {k: v for k, v in fields.items() if k != "worker"}
                spans = fields.get("spans")
                if isinstance(spans, Mapping):
                    fields["spans"] = {
                        name: (
                            entry.get("count") if isinstance(entry, Mapping) else entry
                        )
                        for name, entry in spans.items()
                    }
                normalized["fields"] = fields
            elif kind == "sweep_progress":
                normalized["fields"] = {
                    k: v for k, v in fields.items() if k not in _PROGRESS_TIMING_FIELDS
                }
    return normalized


def _fold_counters(records: Sequence[Mapping[str, Any]]) -> Dict[str, int]:
    totals: Dict[str, int] = {}
    for record in records:
        if record.get("type") == "counter":
            name = _mask_worker(str(record.get("name")))
            totals[name] = totals.get(name, 0) + int(record.get("value", 0))
    return totals


def _span_totals(records: Sequence[Mapping[str, Any]]) -> Dict[str, Dict[str, Any]]:
    totals: Dict[str, Dict[str, Any]] = {}
    for record in records:
        if record.get("type") == "span-end":
            name = str(record.get("name"))
            entry = totals.setdefault(name, {"count": 0, "seconds": 0.0})
            entry["count"] += 1
            entry["seconds"] += float(record.get("seconds", 0.0))
    return totals


def _last_cache_stats(
    records: Sequence[Mapping[str, Any]],
) -> Optional[Mapping[str, Any]]:
    last = None
    for record in records:
        if record.get("type") == "event" and record.get("kind") == "cache_stats":
            last = record.get("fields")
    return last if isinstance(last, Mapping) else None


def _hit_rate(stats: Optional[Mapping[str, Any]]) -> Optional[Fraction]:
    if stats is None:
        return None
    hits = int(stats.get("cache_hits", 0))
    misses = int(stats.get("cache_misses", 0))
    if hits + misses == 0:
        return None
    return Fraction(hits, hits + misses)


def _record_summary(record: Optional[Mapping[str, Any]]) -> Optional[Dict[str, Any]]:
    """A compact, human-scannable stand-in for one normalised record."""
    if record is None:
        return None
    summary: Dict[str, Any] = {"type": record.get("type")}
    for key in ("name", "kind", "value", "schema"):
        if key in record:
            summary[key] = record[key]
    fields = record.get("fields")
    if isinstance(fields, Mapping):
        summary["fields"] = {
            key: (
                "<derivation>"
                if key == "derivation"
                else fields[key]
            )
            for key in sorted(fields)
        }
    return summary


# ----------------------------------------------------------------------
# Derivation diff
# ----------------------------------------------------------------------


def _node_divergence(
    a: DerivationNode, b: DerivationNode, path: str
) -> Optional[Dict[str, Any]]:
    """The first diverging node of two derivation trees, depth-first.

    A node's own content is compared before its children, so the
    reported path is the shallowest, leftmost point of disagreement.
    """
    for field_name in ("rule", "formula", "point", "holds", "definition", "detail"):
        value_a = getattr(a, field_name)
        value_b = getattr(b, field_name)
        if value_a != value_b:
            return {
                "path": path,
                "field": field_name,
                "rule": a.rule,
                "a": value_a,
                "b": value_b,
            }
    if len(a.children) != len(b.children):
        return {
            "path": path,
            "field": "children",
            "rule": a.rule,
            "a": len(a.children),
            "b": len(b.children),
        }
    for position, (child_a, child_b) in enumerate(zip(a.children, b.children)):
        found = _node_divergence(child_a, child_b, f"{path}.children[{position}]")
        if found is not None:
            return found
    return None


def diff_derivations(a: Derivation, b: Derivation) -> Dict[str, Any]:
    """Compare two ``repro-explain/1`` derivations.

    Equal fingerprints mean byte-identical canonical JSON -- zero
    divergence by construction.  Otherwise the trees are walked in
    parallel to the first diverging node (the shallowest, leftmost
    disagreement), which localises *where* the two evaluations parted.
    """
    summary: Dict[str, Any] = {
        "kind": "explain",
        "fingerprint_a": a.fingerprint(),
        "fingerprint_b": b.fingerprint(),
        "formula_a": a.formula,
        "formula_b": b.formula,
        "diverged": False,
        "first_divergence": None,
    }
    if summary["fingerprint_a"] == summary["fingerprint_b"]:
        return summary
    summary["diverged"] = True
    for field_name in ("assignment", "formula", "point"):
        value_a = getattr(a, field_name)
        value_b = getattr(b, field_name)
        if value_a != value_b:
            summary["first_divergence"] = {
                "path": field_name,
                "field": field_name,
                "a": value_a,
                "b": value_b,
            }
            return summary
    summary["first_divergence"] = _node_divergence(a.root, b.root, "root")
    return summary


def _embedded_derivation(record: Mapping[str, Any]) -> Optional[Derivation]:
    fields = record.get("fields")
    if not isinstance(fields, Mapping):
        return None
    payload = fields.get("derivation")
    if not isinstance(payload, Mapping):
        return None
    try:
        return derivation_from_json(payload)
    except ProvenanceError:
        return None


# ----------------------------------------------------------------------
# Hash-consed DAG diff (repro-explain/2, and audit-bundle node tables)
# ----------------------------------------------------------------------

#: Node-payload fields compared during fingerprint-guided descent, in
#: reporting order (most meaningful first; ``children`` is structural).
_DAG_CONTENT_FIELDS = ("rule", "formula", "point", "holds", "definition", "detail")


def dag_divergence(
    nodes_a: Mapping[str, Mapping[str, Any]],
    nodes_b: Mapping[str, Mapping[str, Any]],
    ref_a: str,
    ref_b: str,
) -> Tuple[Optional[Dict[str, Any]], int]:
    """Fingerprint-guided descent to the first diverging DAG node.

    The hash-consed counterpart of :func:`_node_divergence`: because a
    ``repro-explain/2`` fingerprint commits to its whole subtree, equal
    child refs prove the subtrees identical without visiting them, and
    the walk descends only into the leftmost child whose refs differ --
    one root-to-divergence path instead of a full tree comparison.

    Returns ``(divergence, skipped)`` where ``divergence`` is ``None``
    when the roots agree and ``skipped`` counts the shared subtrees the
    descent never had to enter.
    """
    skipped = 0
    path = "root"
    while True:
        if ref_a == ref_b:
            return None, skipped
        payload_a = nodes_a.get(ref_a)
        payload_b = nodes_b.get(ref_b)
        if payload_a is None or payload_b is None:
            return (
                {
                    "path": path,
                    "field": "nodes",
                    "a": ref_a if payload_a is None else "resolved",
                    "b": ref_b if payload_b is None else "resolved",
                    "note": "dangling fingerprint reference",
                },
                skipped,
            )
        for field_name in _DAG_CONTENT_FIELDS:
            value_a = payload_a.get(field_name)
            value_b = payload_b.get(field_name)
            if value_a != value_b:
                return (
                    {
                        "path": path,
                        "field": field_name,
                        "rule": payload_a.get("rule"),
                        "a": value_a,
                        "b": value_b,
                        "ref_a": ref_a,
                        "ref_b": ref_b,
                    },
                    skipped,
                )
        children_a = payload_a.get("children", [])
        children_b = payload_b.get("children", [])
        if len(children_a) != len(children_b):
            return (
                {
                    "path": path,
                    "field": "children",
                    "rule": payload_a.get("rule"),
                    "a": len(children_a),
                    "b": len(children_b),
                    "ref_a": ref_a,
                    "ref_b": ref_b,
                },
                skipped,
            )
        descend: Optional[Tuple[int, str, str]] = None
        for position, (child_a, child_b) in enumerate(zip(children_a, children_b)):
            if child_a == child_b:
                skipped += 1
            elif descend is None:
                descend = (position, child_a, child_b)
        if descend is None:
            # Same payload under two fingerprints: the refs lie about
            # the content, which verifyaudit's hash tier would flag.
            return (
                {
                    "path": path,
                    "field": "fingerprint",
                    "a": ref_a,
                    "b": ref_b,
                    "note": "equal payloads filed under different fingerprints",
                },
                skipped,
            )
        position, ref_a, ref_b = descend
        path = f"{path}.children[{position}]"


def _dag_root_key(entry: Mapping[str, Any]) -> str:
    return json.dumps(
        {
            "assignment": entry.get("assignment"),
            "formula": entry.get("formula"),
            "point": entry.get("point"),
        },
        sort_keys=True,
    )


def diff_explain_dag(
    doc_a: Mapping[str, Any], doc_b: Mapping[str, Any]
) -> Dict[str, Any]:
    """Compare two multi-root ``repro-explain/2`` documents (sweep explains).

    Roots align on (assignment, formula, point); a shared root diverges
    exactly when its fingerprints differ (the Merkle property), and the
    first diverging root is localised by fingerprint-guided descent --
    shared subtrees are skipped wholesale, never re-compared.
    """
    roots_a = {_dag_root_key(entry): entry for entry in doc_a.get("roots", [])}
    roots_b = {_dag_root_key(entry): entry for entry in doc_b.get("roots", [])}
    only_a = sorted(set(roots_a) - set(roots_b))
    only_b = sorted(set(roots_b) - set(roots_a))
    diverging = [
        key
        for key in sorted(set(roots_a) & set(roots_b))
        if roots_a[key].get("root") != roots_b[key].get("root")
    ]
    summary: Dict[str, Any] = {
        "kind": "explain-dag",
        "roots_a": len(roots_a),
        "roots_b": len(roots_b),
        "nodes_a": len(doc_a.get("nodes", {})),
        "nodes_b": len(doc_b.get("nodes", {})),
        "only_in_a": only_a,
        "only_in_b": only_b,
        "diverging_roots": len(diverging),
        "diverged": bool(diverging or only_a or only_b),
        "first_divergence": None,
        "shared_subtrees_skipped": 0,
    }
    if diverging:
        key = diverging[0]
        divergence, skipped = dag_divergence(
            doc_a.get("nodes", {}),
            doc_b.get("nodes", {}),
            roots_a[key]["root"],
            roots_b[key]["root"],
        )
        if divergence is not None:
            divergence["root"] = json.loads(key)
        summary["first_divergence"] = divergence
        summary["shared_subtrees_skipped"] = skipped
    elif only_a or only_b:
        summary["first_divergence"] = {
            "field": "roots",
            "root": json.loads((only_a + only_b)[0]),
            "a": (only_a + only_b)[0] in set(roots_a),
            "b": (only_a + only_b)[0] in set(roots_b),
        }
    return summary


# ----------------------------------------------------------------------
# Audit-bundle diff
# ----------------------------------------------------------------------

#: Leaf fields compared when two chains part, in reporting order:
#: content first (what diverged), hashes last (they always differ at
#: the parting position, so they are the fallback, not the headline).
_LEAF_FIELDS = ("index", "task", "row", "root_ref", "prev", "leaf_hash", "chain")


def leaf_divergence(
    bundle_a: AuditBundle, bundle_b: AuditBundle, position: int
) -> Tuple[Dict[str, Any], Optional[Dict[str, Any]]]:
    """Classify why two bundles' leaves at ``position`` disagree.

    Returns ``(divergence, node_divergence)``: the first differing leaf
    field, plus -- when the leaves bind different derivation roots -- the
    first diverging derivation node by fingerprint-guided descent into
    the two node tables.
    """
    leaf_a = bundle_a.leaves[position]
    leaf_b = bundle_b.leaves[position]
    divergence: Dict[str, Any] = {"position": position, "field": "chain"}
    for field_name in _LEAF_FIELDS:
        value_a = leaf_a.get(field_name)
        value_b = leaf_b.get(field_name)
        if value_a != value_b:
            divergence = {
                "position": position,
                "field": field_name,
                "index_a": leaf_a.get("index"),
                "index_b": leaf_b.get("index"),
                "a": value_a,
                "b": value_b,
            }
            break
    node_divergence: Optional[Dict[str, Any]] = None
    ref_a = leaf_a.get("root_ref")
    ref_b = leaf_b.get("root_ref")
    if ref_a != ref_b and ref_a is not None and ref_b is not None:
        node_divergence, _skipped = dag_divergence(
            bundle_a.nodes, bundle_b.nodes, ref_a, ref_b
        )
    return divergence, node_divergence


def diff_audit(bundle_a: AuditBundle, bundle_b: AuditBundle) -> Dict[str, Any]:
    """Compare two ``repro-audit/1`` bundles, field for field.

    Every record is content here -- the leaf payloads *and* the recorded
    hashes (two honest bundles of identical sweeps have identical
    hashes, and a hash that differs over identical payloads exposes a
    tampered chain).  The recorded roots are therefore never trusted as
    a shortcut: a tamperer who edits a row without re-deriving the chain
    leaves the roots equal, and exactly that bundle must still diverge
    here.  Integrity *within* one bundle (do the hashes match the
    payloads?) is ``verifyaudit``'s job, not the diff's.
    """
    summary: Dict[str, Any] = {
        "kind": "audit",
        "leaves_a": len(bundle_a.leaves),
        "leaves_b": len(bundle_b.leaves),
        "nodes_a": len(bundle_a.nodes),
        "nodes_b": len(bundle_b.nodes),
        "explain_schema_a": bundle_a.header.get("explain_schema"),
        "explain_schema_b": bundle_b.header.get("explain_schema"),
        "root_a": bundle_a.root,
        "root_b": bundle_b.root,
        "diverged": False,
        "first_divergence": None,
        "derivation_divergence": None,
    }
    if bundle_a.header != bundle_b.header:
        summary["diverged"] = True
        summary["first_divergence"] = {
            "position": None,
            "field": "header",
            "a": bundle_a.header,
            "b": bundle_b.header,
        }
        return summary
    limit = min(len(bundle_a.leaves), len(bundle_b.leaves))
    for position in range(limit):
        if bundle_a.leaves[position] != bundle_b.leaves[position]:
            divergence, node_divergence = leaf_divergence(
                bundle_a, bundle_b, position
            )
            summary["diverged"] = True
            summary["first_divergence"] = divergence
            summary["derivation_divergence"] = node_divergence
            return summary
    if len(bundle_a.leaves) != len(bundle_b.leaves):
        summary["diverged"] = True
        summary["first_divergence"] = {
            "position": limit,
            "field": "leaves",
            "a": len(bundle_a.leaves),
            "b": len(bundle_b.leaves),
            "note": "one bundle is a strict prefix of the other",
        }
        return summary
    if bundle_a.nodes != bundle_b.nodes:
        # Identical leaves over differing node tables: an orphaned or
        # tampered node record that no leaf's root reaches any more.
        differing = sorted(
            ref
            for ref in set(bundle_a.nodes) | set(bundle_b.nodes)
            if bundle_a.nodes.get(ref) != bundle_b.nodes.get(ref)
        )
        summary["diverged"] = True
        summary["first_divergence"] = {
            "position": None,
            "field": "nodes",
            "refs": differing[:8],
            "a": len(bundle_a.nodes),
            "b": len(bundle_b.nodes),
        }
    return summary


# ----------------------------------------------------------------------
# Trace diff
# ----------------------------------------------------------------------


def diff_traces(
    records_a: Sequence[Mapping[str, Any]],
    records_b: Sequence[Mapping[str, Any]],
) -> Dict[str, Any]:
    """Compare two ``repro-trace/1`` record streams.

    Reports folded counter deltas, per-span timing ratios (informational
    only), the exact cache hit-rate shift, and the first position where
    the normalised streams disagree.  When the first diverging records
    both embed a derivation (``row_provenance`` / ``derivation``
    events), the diff recurses into the trees and also reports the first
    diverging derivation node.
    """
    counters_a = _fold_counters(records_a)
    counters_b = _fold_counters(records_b)
    counter_deltas = {
        name: {
            "a": counters_a.get(name, 0),
            "b": counters_b.get(name, 0),
            "delta": counters_b.get(name, 0) - counters_a.get(name, 0),
        }
        for name in sorted(set(counters_a) | set(counters_b))
        if counters_a.get(name, 0) != counters_b.get(name, 0)
    }

    spans_a = _span_totals(records_a)
    spans_b = _span_totals(records_b)
    timing_ratios = {}
    for name in sorted(set(spans_a) | set(spans_b)):
        entry_a = spans_a.get(name, {"count": 0, "seconds": 0.0})
        entry_b = spans_b.get(name, {"count": 0, "seconds": 0.0})
        ratio = (
            round(entry_b["seconds"] / entry_a["seconds"], 4)
            if entry_a["seconds"] > 0.0
            else None
        )
        timing_ratios[name] = {
            "count_a": entry_a["count"],
            "count_b": entry_b["count"],
            "seconds_a": round(entry_a["seconds"], 6),
            "seconds_b": round(entry_b["seconds"], 6),
            "ratio": ratio,
        }

    rate_a = _hit_rate(_last_cache_stats(records_a))
    rate_b = _hit_rate(_last_cache_stats(records_b))
    hit_rate = {
        "a": rate_a,
        "b": rate_b,
        "shift": (rate_b - rate_a) if rate_a is not None and rate_b is not None else None,
    }

    normalized_a = [normalize_record(record) for record in records_a]
    normalized_b = [normalize_record(record) for record in records_b]
    first_divergence: Optional[Dict[str, Any]] = None
    derivation_divergence: Optional[Dict[str, Any]] = None
    limit = min(len(normalized_a), len(normalized_b))
    for position in range(limit):
        if normalized_a[position] != normalized_b[position]:
            record_a = normalized_a[position]
            record_b = normalized_b[position]
            first_divergence = {
                "index": position,
                "a": _record_summary(record_a),
                "b": _record_summary(record_b),
            }
            inner_a = _embedded_derivation(record_a)
            inner_b = _embedded_derivation(record_b)
            if inner_a is not None and inner_b is not None:
                derivation_divergence = diff_derivations(inner_a, inner_b)
            break
    else:
        if len(normalized_a) != len(normalized_b):
            first_divergence = {
                "index": limit,
                "a": _record_summary(normalized_a[limit])
                if len(normalized_a) > limit
                else None,
                "b": _record_summary(normalized_b[limit])
                if len(normalized_b) > limit
                else None,
            }

    return {
        "kind": "trace",
        "records_a": len(records_a),
        "records_b": len(records_b),
        "counter_deltas": counter_deltas,
        "timing_ratios": timing_ratios,
        "hit_rate": hit_rate,
        "diverged": first_divergence is not None,
        "first_divergence": first_divergence,
        "derivation_divergence": derivation_divergence,
    }


# ----------------------------------------------------------------------
# Metrics-snapshot diff
# ----------------------------------------------------------------------


def _final_snapshot(records: Sequence[Mapping[str, Any]]) -> Optional[Mapping[str, Any]]:
    last = None
    for record in records:
        if record.get("type") == "snapshot":
            last = record
    return last


def _masked_ints(mapping: Any) -> Dict[str, int]:
    if not isinstance(mapping, Mapping):
        return {}
    totals: Dict[str, int] = {}
    for name, value in mapping.items():
        key = _mask_worker(str(name))
        totals[key] = totals.get(key, 0) + int(value)
    return totals


def _int_deltas(a: Dict[str, int], b: Dict[str, int]) -> Dict[str, Dict[str, int]]:
    return {
        name: {
            "a": a.get(name, 0),
            "b": b.get(name, 0),
            "delta": b.get(name, 0) - a.get(name, 0),
        }
        for name in sorted(set(a) | set(b))
        if a.get(name, 0) != b.get(name, 0)
    }


def diff_metrics(
    records_a: Sequence[Mapping[str, Any]],
    records_b: Sequence[Mapping[str, Any]],
) -> Dict[str, Any]:
    """Compare two ``repro-metrics/1`` snapshot streams.

    The *final* snapshot of each stream is compared (a stream may
    checkpoint many snapshots; the last one is the run's totals).
    Counter and kernel-total deltas are **content** -- after worker
    telemetry shipping they must match exactly between identically
    seeded runs, pids masked.  Span timings are reported as ratios only,
    and the per-record ``ts``/``pid`` stamps were never compared at all
    (:data:`VOLATILE_KEYS`).
    """
    final_a = _final_snapshot(records_a)
    final_b = _final_snapshot(records_b)
    summary: Dict[str, Any] = {
        "kind": "metrics",
        "snapshots_a": sum(1 for r in records_a if r.get("type") == "snapshot"),
        "snapshots_b": sum(1 for r in records_b if r.get("type") == "snapshot"),
        "label_a": final_a.get("label", "") if final_a else None,
        "label_b": final_b.get("label", "") if final_b else None,
        "counter_deltas": {},
        "kernel_deltas": {},
        "span_count_deltas": {},
        "timing_ratios": {},
        "diverged": False,
        "first_divergence": None,
    }
    if final_a is None or final_b is None:
        if (final_a is None) != (final_b is None):
            summary["diverged"] = True
            summary["first_divergence"] = {
                "field": "snapshots",
                "a": summary["snapshots_a"],
                "b": summary["snapshots_b"],
            }
        return summary
    counters_a = _masked_ints(final_a.get("counters"))
    counters_b = _masked_ints(final_b.get("counters"))
    summary["counter_deltas"] = _int_deltas(counters_a, counters_b)
    kernel_a = _masked_ints(final_a.get("kernel_totals"))
    kernel_b = _masked_ints(final_b.get("kernel_totals"))
    summary["kernel_deltas"] = _int_deltas(kernel_a, kernel_b)

    spans_a = final_a.get("spans") or {}
    spans_b = final_b.get("spans") or {}
    count_a = {str(n): int(e.get("count", 0)) for n, e in spans_a.items()}
    count_b = {str(n): int(e.get("count", 0)) for n, e in spans_b.items()}
    summary["span_count_deltas"] = _int_deltas(count_a, count_b)
    for name in sorted(set(spans_a) | set(spans_b)):
        seconds_a = float(spans_a.get(name, {}).get("total_seconds", 0.0))
        seconds_b = float(spans_b.get(name, {}).get("total_seconds", 0.0))
        summary["timing_ratios"][name] = {
            "seconds_a": round(seconds_a, 6),
            "seconds_b": round(seconds_b, 6),
            "ratio": round(seconds_b / seconds_a, 4) if seconds_a > 0.0 else None,
        }

    for field, deltas in (
        ("counters", summary["counter_deltas"]),
        ("kernel_totals", summary["kernel_deltas"]),
        ("spans", summary["span_count_deltas"]),
    ):
        if deltas:
            summary["diverged"] = True
            if summary["first_divergence"] is None:
                name = next(iter(deltas))
                summary["first_divergence"] = {"field": field, "name": name, **deltas[name]}
    if summary["label_a"] != summary["label_b"]:
        summary["diverged"] = True
        if summary["first_divergence"] is None:
            summary["first_divergence"] = {
                "field": "label",
                "a": summary["label_a"],
                "b": summary["label_b"],
            }
    return summary


# ----------------------------------------------------------------------
# Bench diff
# ----------------------------------------------------------------------


def _bench_key(entry: Mapping[str, Any]) -> str:
    """Alignment key for one benchmark entry.

    A report may legitimately repeat a benchmark name across backends or
    parameter sets (``BENCH_4.json`` runs ``scalability_pipeline`` once
    per backend), so the key folds in whatever distinguishes the runs.
    """
    name = str(entry.get("name"))
    backend = entry.get("backend")
    params = entry.get("params")
    suffix = ""
    if backend is not None:
        suffix += f"[{backend}]"
    if params:
        suffix += json.dumps(params, sort_keys=True)
    return name + suffix


def diff_bench(doc_a: Mapping[str, Any], doc_b: Mapping[str, Any]) -> Dict[str, Any]:
    """Compare two ``repro-bench/2`` reports, aligned by benchmark.

    Entries align on name plus backend/params (names repeat across
    backends).  Exact ``results`` must match (content divergence);
    ``seconds`` are reported as ratios only, so timing drift between
    machines or runs never fails a diff.
    """
    by_name_a = {_bench_key(entry): entry for entry in doc_a.get("benchmarks", [])}
    by_name_b = {_bench_key(entry): entry for entry in doc_b.get("benchmarks", [])}
    only_a = sorted(set(by_name_a) - set(by_name_b))
    only_b = sorted(set(by_name_b) - set(by_name_a))
    result_divergences = []
    timing_ratios = {}
    counter_deltas: Dict[str, Dict[str, Any]] = {}
    for name in sorted(set(by_name_a) & set(by_name_b)):
        entry_a = by_name_a[name]
        entry_b = by_name_b[name]
        seconds_a = float(entry_a.get("seconds", 0.0))
        seconds_b = float(entry_b.get("seconds", 0.0))
        timing_ratios[name] = {
            "seconds_a": round(seconds_a, 6),
            "seconds_b": round(seconds_b, 6),
            "ratio": round(seconds_b / seconds_a, 4) if seconds_a > 0.0 else None,
        }
        results_a = entry_a.get("results")
        results_b = entry_b.get("results")
        if results_a != results_b:
            result_divergences.append(
                {"name": name, "a": results_a, "b": results_b}
            )
        for counter in sorted(
            set(entry_a.get("counters", {})) | set(entry_b.get("counters", {}))
        ):
            value_a = entry_a.get("counters", {}).get(counter, 0)
            value_b = entry_b.get("counters", {}).get(counter, 0)
            if value_a != value_b:
                counter_deltas[f"{name}.{counter}"] = {
                    "a": value_a,
                    "b": value_b,
                    "delta": value_b - value_a,
                }
    diverged = bool(result_divergences or only_a or only_b)
    return {
        "kind": "bench",
        "benchmarks_a": len(by_name_a),
        "benchmarks_b": len(by_name_b),
        "only_in_a": only_a,
        "only_in_b": only_b,
        "result_divergences": result_divergences,
        "counter_deltas": counter_deltas,
        "timing_ratios": timing_ratios,
        "diverged": diverged,
        "first_divergence": (
            {"benchmark": result_divergences[0]["name"]}
            if result_divergences
            else ({"benchmark": (only_a + only_b)[0]} if diverged else None)
        ),
    }


# ----------------------------------------------------------------------
# Entry point + rendering
# ----------------------------------------------------------------------


def diff_artifacts(path_a: str, path_b: str) -> Dict[str, Any]:
    """Load, kind-check, and diff two artifact files.

    The two files must be the same kind of artifact; mixing (say) a
    trace with a bench report raises :class:`~repro.errors.TraceError`.
    """
    kind_a, payload_a = load_artifact(path_a)
    kind_b, payload_b = load_artifact(path_b)
    if kind_a != kind_b:
        raise TraceError(
            f"cannot diff a {kind_a} artifact against a {kind_b} artifact "
            f"({path_a!r} vs {path_b!r})"
        )
    if kind_a == "trace":
        summary = diff_traces(payload_a, payload_b)
    elif kind_a == "explain":
        summary = diff_derivations(payload_a, payload_b)
    elif kind_a == "explain-dag":
        summary = diff_explain_dag(payload_a, payload_b)
    elif kind_a == "audit":
        summary = diff_audit(payload_a, payload_b)
    elif kind_a == "metrics":
        summary = diff_metrics(payload_a, payload_b)
    else:
        summary = diff_bench(payload_a, payload_b)
    summary["a"] = path_a
    summary["b"] = path_b
    return summary


def _render_divergence(divergence: Optional[Mapping[str, Any]], lines: List[str]) -> None:
    if divergence is None:
        lines.append("first divergence: none")
        return
    lines.append(f"first divergence: {json.dumps(divergence, default=str, sort_keys=True)}")


def render_diff(summary: Mapping[str, Any]) -> str:
    """Plain-text rendering of a diff summary."""
    lines: List[str] = []
    kind = summary.get("kind")
    verdict = "DIVERGED" if summary.get("diverged") else "identical content"
    lines.append(f"tracediff [{kind}]: {verdict}")
    lines.append(f"  A: {summary.get('a', '?')}")
    lines.append(f"  B: {summary.get('b', '?')}")
    if kind == "trace":
        lines.append(
            f"records: {summary['records_a']} vs {summary['records_b']}"
        )
        deltas = summary.get("counter_deltas", {})
        if deltas:
            lines.append("counter deltas:")
            for name, entry in deltas.items():
                lines.append(
                    f"  {name}: {entry['a']} -> {entry['b']} ({entry['delta']:+d})"
                )
        else:
            lines.append("counter deltas: none")
        rate = summary.get("hit_rate", {})
        if rate.get("a") is not None or rate.get("b") is not None:
            lines.append(
                f"cache hit rate: {rate.get('a')} -> {rate.get('b')}"
                + (f" (shift {rate['shift']})" if rate.get("shift") is not None else "")
            )
        ratios = summary.get("timing_ratios", {})
        if ratios:
            lines.append("timing ratios (informational, B/A):")
            for name, entry in ratios.items():
                ratio = entry["ratio"]
                shown = f"{ratio:.4f}" if ratio is not None else "n/a"
                lines.append(
                    f"  {name}: {entry['seconds_a']:.6f}s -> "
                    f"{entry['seconds_b']:.6f}s (x{shown})"
                )
        _render_divergence(summary.get("first_divergence"), lines)
        derivation = summary.get("derivation_divergence")
        if derivation is not None:
            node = derivation.get("first_divergence")
            if node is not None:
                lines.append(
                    "first diverging derivation node: "
                    f"{node.get('path')} [{node.get('field')}]"
                )
    elif kind == "explain":
        lines.append(f"fingerprint A: {summary.get('fingerprint_a')}")
        lines.append(f"fingerprint B: {summary.get('fingerprint_b')}")
        node = summary.get("first_divergence")
        if node is not None:
            lines.append(
                f"first diverging derivation node: {node.get('path')} "
                f"[{node.get('field')}]: {node.get('a')!r} vs {node.get('b')!r}"
            )
        else:
            lines.append("first divergence: none")
    elif kind == "explain-dag":
        lines.append(
            f"roots: {summary['roots_a']} vs {summary['roots_b']} "
            f"({summary['diverging_roots']} diverging); "
            f"nodes: {summary['nodes_a']} vs {summary['nodes_b']}"
        )
        for side, keys in (("A", summary["only_in_a"]), ("B", summary["only_in_b"])):
            if keys:
                lines.append(f"roots only in {side}: {len(keys)}")
        node = summary.get("first_divergence")
        if node is not None:
            lines.append(
                f"first diverging derivation node: {node.get('path')} "
                f"[{node.get('field')}] "
                f"({summary['shared_subtrees_skipped']} shared subtree(s) skipped)"
            )
        else:
            lines.append("first divergence: none")
    elif kind == "audit":
        lines.append(
            f"leaves: {summary['leaves_a']} vs {summary['leaves_b']}; "
            f"nodes: {summary['nodes_a']} vs {summary['nodes_b']}"
        )
        lines.append(f"root A: {summary['root_a']}")
        lines.append(f"root B: {summary['root_b']}")
        _render_divergence(summary.get("first_divergence"), lines)
        node = summary.get("derivation_divergence")
        if node is not None:
            lines.append(
                "first diverging derivation node: "
                f"{node.get('path')} [{node.get('field')}]"
            )
    elif kind == "metrics":
        lines.append(
            f"snapshots: {summary['snapshots_a']} vs {summary['snapshots_b']}"
        )
        if summary.get("label_a") != summary.get("label_b"):
            lines.append(
                f"labels: {summary.get('label_a')!r} vs {summary.get('label_b')!r}"
            )
        for title, deltas in (
            ("counter deltas", summary.get("counter_deltas", {})),
            ("kernel totals deltas", summary.get("kernel_deltas", {})),
            ("span count deltas", summary.get("span_count_deltas", {})),
        ):
            if deltas:
                lines.append(f"{title}:")
                for name, entry in deltas.items():
                    lines.append(
                        f"  {name}: {entry['a']} -> {entry['b']} ({entry['delta']:+d})"
                    )
            else:
                lines.append(f"{title}: none")
        ratios = summary.get("timing_ratios", {})
        if ratios:
            lines.append("timing ratios (informational, B/A):")
            for name, entry in ratios.items():
                ratio = entry["ratio"]
                shown = f"{ratio:.4f}" if ratio is not None else "n/a"
                lines.append(
                    f"  {name}: {entry['seconds_a']:.6f}s -> "
                    f"{entry['seconds_b']:.6f}s (x{shown})"
                )
        _render_divergence(summary.get("first_divergence"), lines)
    elif kind == "bench":
        lines.append(
            f"benchmarks: {summary['benchmarks_a']} vs {summary['benchmarks_b']}"
        )
        for side, names in (("A", summary["only_in_a"]), ("B", summary["only_in_b"])):
            if names:
                lines.append(f"only in {side}: {', '.join(names)}")
        for divergence in summary.get("result_divergences", []):
            lines.append(f"results differ: {divergence['name']}")
        deltas = summary.get("counter_deltas", {})
        if deltas:
            lines.append("counter deltas:")
            for name, entry in deltas.items():
                lines.append(
                    f"  {name}: {entry['a']} -> {entry['b']} ({entry['delta']:+d})"
                )
        ratios = summary.get("timing_ratios", {})
        if ratios:
            lines.append("timing ratios (informational, B/A):")
            for name, entry in ratios.items():
                ratio = entry["ratio"]
                shown = f"{ratio:.4f}" if ratio is not None else "n/a"
                lines.append(f"  {name}: x{shown}")
    return "\n".join(lines)
