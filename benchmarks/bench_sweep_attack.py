"""Sweep -- coordinated-attack guarantees across the design space.

Extends E12 with the full parameter sweep: per protocol, messenger count
and loss probability, the run-level coordination probability and the
largest ``eps`` for which ``C^eps phi_CA`` holds at all points under
``P_post``.  The crossover for the paper's eps = 0.99 (CA2 first achieves
it with 7 messengers at loss 1/2) falls out of the table.
"""

from fractions import Fraction

from repro.attack import build_ca2, crossover_messengers, guarantee_sweep
from repro.reporting import print_table


def run_experiment():
    rows = guarantee_sweep(
        messenger_counts=[1, 2, 4, 7, 10],
        losses=[Fraction(1, 2)],
        epsilon=Fraction(99, 100),
    )
    crossover = crossover_messengers(
        lambda k, loss: build_ca2(k, loss), Fraction(99, 100)
    )
    loss_rows = guarantee_sweep(
        messenger_counts=[4],
        losses=[Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)],
        epsilon=Fraction(99, 100),
    )
    return rows, crossover, loss_rows


def test_sweep_attack(benchmark):
    rows, crossover, loss_rows = benchmark(run_experiment)
    print_table(
        "SWEEP  coordinated attack, loss = 1/2",
        ["protocol", "messengers", "run-level", "post threshold", "achieves eps=.99"],
        [
            (row.protocol, row.messengers, row.run_level, row.post_threshold, row.achieves_99_post)
            for row in rows
        ],
    )
    print_table(
        "SWEEP  CA-protocols at 4 messengers, varying loss",
        ["protocol", "loss", "run-level", "post threshold"],
        [
            (row.protocol, row.loss, row.run_level, row.post_threshold)
            for row in loss_rows
        ],
    )
    print(f"\ncrossover: CA2 first achieves eps = 99/100 at {crossover} messengers")
    assert crossover == 7
    ca1_rows = [row for row in rows if row.protocol == "CA1"]
    assert all(row.post_threshold == 0 for row in ca1_rows)
    ca2_by_k = {row.messengers: row for row in rows if row.protocol == "CA2"}
    assert not ca2_by_k[4].achieves_99_post
    assert ca2_by_k[7].achieves_99_post
    adaptive = {row.messengers: row for row in rows if row.protocol == "CA1-adaptive"}
    assert all(row.post_threshold > 0 for row in adaptive.values())
