"""The tracereport CLI: folding repro-trace/1 JSONL into summaries."""

import json
import sys
from fractions import Fraction
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from repro.obs import TraceRecorder, read_trace, use_recorder  # noqa: E402
from repro.attack.sweep import guarantee_sweep  # noqa: E402
from repro.probability import reset_kernel_totals  # noqa: E402
from repro.robustness import RetryPolicy, run_tasks  # noqa: E402
from repro.testing import FaultInjectingTask, FaultPlan  # noqa: E402

from tools.tracereport import render_report, summarize  # noqa: E402
from tools.tracereport.cli import main as cli_main  # noqa: E402


def _double(value):
    return value * 2


def make_trace(path):
    """Record a sweep plus a chaos engine run into ``path``."""
    reset_kernel_totals()
    plan = FaultPlan.from_seed(seed=3, task_count=5, kinds=("raise",), rate=0.6)
    recorder = TraceRecorder(path)
    with use_recorder(recorder):
        guarantee_sweep([1, 2], [Fraction(1, 2)])
        run_tasks(
            FaultInjectingTask(_double, plan),
            list(range(5)),
            max_workers=1,
            policy=RetryPolicy(max_attempts=4, base_delay=0.0),
            sleep=lambda _seconds: None,
        )
    recorder.close()
    return path


class TestSummarize:
    def test_folds_spans_counters_and_cache(self, tmp_path):
        records = read_trace(make_trace(tmp_path / "t.jsonl"))
        summary = summarize(records)
        assert summary["spans"]["guarantee_sweep"]["count"] == 1
        assert summary["spans"]["sweep_row"]["count"] == 6
        assert summary["counters"]["engine.tasks_ok"] == 5
        # hit rate is exact, from the last cache_stats event
        rate = summary["cache"]["hit_rate"]
        assert isinstance(rate, Fraction)
        assert 0 <= rate <= 1

    def test_spans_sorted_by_total_seconds(self, tmp_path):
        records = read_trace(make_trace(tmp_path / "t.jsonl"))
        totals = [
            stats["total_seconds"]
            for stats in summarize(records)["spans"].values()
        ]
        assert totals == sorted(totals, reverse=True)

    def test_retry_histogram_counts_attempts_per_task(self, tmp_path):
        records = read_trace(make_trace(tmp_path / "t.jsonl"))
        retries = summarize(records)["retries"]
        assert retries["tasks"] == 5
        assert sum(retries["attempts_per_task"].values()) == 5
        outcomes = retries["outcomes"]
        assert outcomes["ok"] == 5
        assert sum(outcomes.values()) == sum(
            int(attempts) * tasks
            for attempts, tasks in retries["attempts_per_task"].items()
        )

    def test_gfp_section_from_events(self):
        records = [
            {"type": "header", "schema": "repro-trace/1"},
            {"type": "event", "kind": "gfp", "fields": {"iterations": 3}},
            {"type": "event", "kind": "gfp", "fields": {"iterations": 1}},
        ]
        gfp = summarize(records)["gfp"]
        assert gfp == {"fixpoints": 2, "total_iterations": 4, "max_iterations": 3}

    def test_empty_trace_summary(self):
        summary = summarize([{"type": "header", "schema": "repro-trace/1"}])
        assert summary["counters"] == {}
        assert summary["spans"] == {}
        assert "cache" not in summary
        assert "no spans" in render_report(summary)


class TestRenderReport:
    def test_report_names_the_headline_sections(self, tmp_path):
        records = read_trace(make_trace(tmp_path / "t.jsonl"))
        text = render_report(summarize(records))
        assert "Top spans (by total seconds)" in text
        assert "Measure-kernel cache" in text
        assert "Retry histogram (attempts per task)" in text
        assert "hit rate" in text


class TestCli:
    def test_plain_output_exit_zero(self, tmp_path, capsys):
        trace = make_trace(tmp_path / "t.jsonl")
        assert cli_main([str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Top spans" in out
        assert "engine.tasks_ok" in out

    def test_json_output_round_trips(self, tmp_path, capsys):
        trace = make_trace(tmp_path / "t.jsonl")
        assert cli_main(["--json", str(trace)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"]["engine.tasks_ok"] == 5
        # exact Fraction rendered via json_ready as "p/q"
        assert "/" in payload["cache"]["hit_rate"] or payload["cache"][
            "hit_rate"
        ] in ("0", "1")

    def test_invalid_trace_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "counter"}\n{"oops": 1}\n', encoding="utf-8")
        assert cli_main([str(bad)]) == 2
        assert "tracereport:" in capsys.readouterr().err

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert cli_main([str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestEmptyTrace:
    """Pins for the zero-event edge: a trace with no records at all.

    A zero-byte file is *not* a valid trace (no header record), so both
    output modes must exit 2 with a diagnostic on stderr and print
    nothing to stdout -- never crash, never emit partial JSON.  A
    header-only trace (a run that recorded nothing) is valid and exits 0.
    """

    def test_zero_byte_file_exits_two_plain(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_bytes(b"")
        assert cli_main([str(empty)]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "trace is empty" in captured.err

    def test_zero_byte_file_exits_two_json(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_bytes(b"")
        assert cli_main(["--json", str(empty)]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "trace is empty" in captured.err

    def test_whitespace_only_file_exits_two(self, tmp_path, capsys):
        blank = tmp_path / "blank.jsonl"
        blank.write_text("\n\n  \n", encoding="utf-8")
        assert cli_main([str(blank)]) == 2
        assert "trace is empty" in capsys.readouterr().err

    def test_header_only_trace_exits_zero_both_modes(self, tmp_path, capsys):
        from repro.obs import TraceRecorder

        path = tmp_path / "header-only.jsonl"
        TraceRecorder(path).close()
        assert cli_main([str(path)]) == 0
        assert "no spans" in capsys.readouterr().out
        assert cli_main(["--json", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"] == {}
        assert payload["spans"] == {}


class TestMetricsSection:
    def _artifacts(self, tmp_path):
        from repro.obs import MetricsRecorder, MultiRecorder, write_snapshot
        from repro.robustness import run_tasks as run

        reset_kernel_totals()
        trace_path = tmp_path / "t.jsonl"
        metrics_path = tmp_path / "m.jsonl"
        metrics = MetricsRecorder()
        trace = TraceRecorder(trace_path)
        with use_recorder(MultiRecorder([metrics, trace])):
            guarantee_sweep([1, 2], [Fraction(1, 2)])
        trace.close()
        metrics.counter("worker.123.kernel.cache_hits", 7)
        write_snapshot(metrics_path, metrics=metrics, label="pool run")
        return trace_path, metrics_path

    def test_metrics_flag_folds_worker_counters(self, tmp_path, capsys):
        trace_path, metrics_path = self._artifacts(tmp_path)
        code = cli_main(["--json", str(trace_path), "--metrics", str(metrics_path)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        metrics = payload["metrics"]
        assert metrics["label"] == "pool run"
        assert metrics["worker_counters"]["worker.123.kernel.cache_hits"] == 7
        assert metrics["kernel_totals"]["cache_hits"] >= 0

    def test_metrics_tables_rendered(self, tmp_path, capsys):
        trace_path, metrics_path = self._artifacts(tmp_path)
        assert cli_main([str(trace_path), "--metrics", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "Worker-merged counters" in out
        assert "kernel totals" in out

    def test_wrong_schema_metrics_exits_2(self, tmp_path, capsys):
        trace_path, _metrics = self._artifacts(tmp_path)
        code = cli_main([str(trace_path), "--metrics", str(trace_path)])
        assert code == 2
        assert "repro-metrics/1" in capsys.readouterr().err

    def test_missing_metrics_file_exits_2(self, tmp_path, capsys):
        trace_path, _metrics = self._artifacts(tmp_path)
        code = cli_main([str(trace_path), "--metrics", str(tmp_path / "no.jsonl")])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err
