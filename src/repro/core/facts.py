"""Facts: sets of points, with the paper's classification predicates.

Section 2 identifies a fact ``phi`` with the set of points at which it is
true.  :class:`Fact` wraps a predicate on points (plus a printable name) and
supports the boolean combinators.  The module also provides the paper's two
classification notions:

* a *fact about the run* -- same truth value at every point of a run;
* a *fact about the global state* -- same truth value at every point with
  the same global state.

Primitive propositions of a *state-generated* language (Section 5) must be
facts about the global state; :func:`is_fact_about_global_state` is the
checker Proposition 3's hypotheses rely on.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Hashable, Iterable, Optional

from .model import GlobalState, Point, Run, System

Predicate = Callable[[Point], bool]


class Fact:
    """A fact: a predicate on points, identified with its extension.

    Facts are composable with ``&``, ``|``, ``~`` and ``>>`` (implication),
    mirroring how the logic's boolean connectives act on extensions.
    """

    __slots__ = ("_predicate", "name")

    def __init__(self, predicate: Predicate, name: Optional[str] = None) -> None:
        self._predicate = predicate
        self.name = name or "<fact>"

    # Facts are intensional objects: two facts with extensionally equal
    # predicates are still distinct keys.  Identity equality/hashing is
    # Python's default, but the event caches in
    # :class:`~repro.core.assignments.ProbabilityAssignment` key on fact
    # objects, so pin the contract explicitly.
    __eq__ = object.__eq__
    __ne__ = object.__ne__
    __hash__ = object.__hash__

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def holds_at(self, point: Point) -> bool:
        """``(r, k) |= phi``."""
        return bool(self._predicate(point))

    def __call__(self, point: Point) -> bool:
        return self.holds_at(point)

    def points(self, system: System) -> FrozenSet[Point]:
        """The extension of the fact within ``system``."""
        return frozenset(point for point in system.points if self.holds_at(point))

    def restricted_to(self, points: Iterable[Point]) -> FrozenSet[Point]:
        """``S(phi)``: the subset of ``points`` satisfying the fact."""
        return frozenset(point for point in points if self.holds_at(point))

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------

    def __and__(self, other: "Fact") -> "Fact":
        return Fact(
            lambda point: self.holds_at(point) and other.holds_at(point),
            name=f"({self.name} & {other.name})",
        )

    def __or__(self, other: "Fact") -> "Fact":
        return Fact(
            lambda point: self.holds_at(point) or other.holds_at(point),
            name=f"({self.name} | {other.name})",
        )

    def __invert__(self) -> "Fact":
        return Fact(lambda point: not self.holds_at(point), name=f"~{self.name}")

    def __rshift__(self, other: "Fact") -> "Fact":
        return Fact(
            lambda point: (not self.holds_at(point)) or other.holds_at(point),
            name=f"({self.name} -> {other.name})",
        )

    def iff(self, other: "Fact") -> "Fact":
        """Material biconditional (used for ``phi_CA``: A attacks iff B attacks)."""
        return Fact(
            lambda point: self.holds_at(point) == other.holds_at(point),
            name=f"({self.name} <-> {other.name})",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Fact({self.name})"

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_points(cls, points: Iterable[Point], name: Optional[str] = None) -> "Fact":
        """The fact whose extension is exactly ``points``."""
        point_set = frozenset(points)
        return cls(point_set.__contains__, name=name or "<point set>")

    @classmethod
    def about_global_state(
        cls, predicate: Callable[[GlobalState], bool], name: Optional[str] = None
    ) -> "Fact":
        """A fact determined by the global state (always state-generated)."""
        return cls(lambda point: predicate(point.global_state), name=name)

    @classmethod
    def about_local_state(
        cls, agent: int, predicate: Callable[[Hashable], bool], name: Optional[str] = None
    ) -> "Fact":
        """A fact determined by one agent's local state."""
        return cls(lambda point: predicate(point.local_state(agent)), name=name)

    @classmethod
    def about_run(
        cls, predicate: Callable[[Run], bool], name: Optional[str] = None
    ) -> "Fact":
        """A fact determined by the run (same value at all its points)."""
        return cls(lambda point: predicate(point.run), name=name)

    @classmethod
    def at_global_state(cls, state: GlobalState, name: Optional[str] = None) -> "Fact":
        """The "sufficient richness" primitive: true exactly at points with
        global state ``state`` (Section 5)."""
        return cls(
            lambda point: point.global_state == state,
            name=name or f"@{state!r}",
        )

    @classmethod
    def always_true(cls) -> "Fact":
        """The trivially true fact."""
        return cls(lambda point: True, name="true")

    @classmethod
    def always_false(cls) -> "Fact":
        """The trivially false fact."""
        return cls(lambda point: False, name="false")


# ----------------------------------------------------------------------
# Classification (Section 2)
# ----------------------------------------------------------------------


def is_fact_about_run(system: System, fact: Fact) -> bool:
    """True iff the fact has the same value at every point of each run."""
    for run in system.runs:
        values = {fact.holds_at(point) for point in run.points()}
        if len(values) > 1:
            return False
    return True


def is_fact_about_global_state(system: System, fact: Fact) -> bool:
    """True iff points sharing a global state agree on the fact."""
    value_by_state: dict = {}
    for point in system.points:
        state = point.global_state
        value = fact.holds_at(point)
        if state in value_by_state and value_by_state[state] != value:
            return False
        value_by_state[state] = value
    return True


def state_generated_point_set(system: System, points: Iterable[Point]) -> bool:
    """Section 5: a point set is *state generated* if it contains every
    point sharing a global state with one of its members."""
    point_set = frozenset(points)
    states = {point.global_state for point in point_set}
    for point in system.points:
        if point.global_state in states and point not in point_set:
            return False
    return True
