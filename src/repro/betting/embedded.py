"""Putting the betting game into the system (Appendix B.3, Theorem 11).

Given a synchronous system ``R``, a propositional fact ``phi``, a bettor
``p_i`` and an opponent ``p_j`` with a family of strategies, the paper
builds a system ``R^phi`` that inserts a betting round after every round of
``R``: each time-``m`` state of a run splits into a time-``2m`` state where
``p_i``'s local state is ``(s, ?)`` and a time-``2m+1`` state where it is
``(s, beta)`` -- ``beta`` being the payoff the opponent's strategy offers
(or a no-bet marker).  Everyone else's local state is untouched, so the
opponent cannot even tell the two phases apart; the probability of
corresponding runs is preserved; and propositional facts keep their truth
values across a pair of phases.

Theorem 11 then says the following are equivalent for propositional
``phi``:

(a) ``(P^j, c)      |= K_i^alpha phi``  in ``R``;
(b) ``(P^j, c_f)    |= K_i^alpha phi``  in ``R^phi``;
(c) ``(P_post, c_f^+) |= K_i^alpha phi``  in ``R^phi``.

The punchline is (c): *after hearing the offer*, conditioning on the
agent's own knowledge alone (``P_post``) already accounts for the
opponent's knowledge -- the offered payoff reveals enough about ``p_j``'s
state and strategy.

The theorem quantifies over all strategies; the executable version works
with a finite family closed under the construction the (c)=>(b) direction
needs -- for every strategy ``g`` and opponent state ``t``, an *injective*
strategy agreeing with ``g`` at ``t`` (:func:`theorem11_closure`).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.assignments import ProbabilityAssignment
from ..core.facts import Fact, is_fact_about_global_state
from ..core.model import GlobalState, Point
from ..core.standard import PostAssignment, opponent_assignment
from ..errors import BettingError
from ..probability.fractionutil import ONE, ZERO, as_fraction
from ..trees.probabilistic_system import ProbabilisticSystem
from ..trees.tree import ComputationTree
from .strategies import NO_BET, Strategy, injective_strategy, opponent_states
from .theorems import VerificationReport, relevant_alphas

NO_OFFER = "no-bet"
AWAITING = "?"


@dataclass(frozen=True)
class _EmbedEnv:
    """Environment of an ``R^phi`` state: strategy id + base env + phase."""

    adversary: object
    strategy_index: int
    base_environment: object
    phase: int


class EmbeddedSystem:
    """``R^phi`` together with the correspondences Theorem 11 needs."""

    def __init__(
        self,
        base: ProbabilisticSystem,
        agent: int,
        opponent: int,
        strategies: Sequence[Strategy],
    ) -> None:
        base.system.require_synchronous()
        self.base = base
        self.agent = agent
        self.opponent = opponent
        self.strategies: Tuple[Strategy, ...] = tuple(strategies)
        if not self.strategies:
            raise BettingError("the embedded system needs at least one strategy")
        trees: List[ComputationTree] = []
        for index, strategy in enumerate(self.strategies):
            for tree in base.trees:
                trees.append(self._embed_tree(tree, index, strategy))
        self.psys = ProbabilisticSystem(trees)
        self._phase_points: Dict[Tuple[int, GlobalState, int], Point] = {}
        for point in self.psys.system.points:
            env: _EmbedEnv = point.global_state.environment  # type: ignore[assignment]
            base_state = self._base_state_of(point.global_state)
            self._phase_points[(env.strategy_index, base_state, env.phase)] = point

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _embed_locals(
        self, state: GlobalState, strategy: Strategy, phase: int
    ) -> Tuple[object, ...]:
        locals_ = list(state.local_states)
        mine = locals_[self.agent]
        if phase == 0:
            locals_[self.agent] = (mine, AWAITING)
        else:
            payoff = strategy.payoff(state.local_states[self.opponent])
            locals_[self.agent] = (mine, NO_OFFER if payoff is NO_BET else payoff)
        return tuple(locals_)

    def _embed_state(
        self, state: GlobalState, tree_adversary, index: int, strategy: Strategy, phase: int
    ) -> GlobalState:
        return GlobalState(
            _EmbedEnv(tree_adversary, index, state.environment, phase),
            self._embed_locals(state, strategy, phase),
        )

    def _embed_tree(
        self, tree: ComputationTree, index: int, strategy: Strategy
    ) -> ComputationTree:
        children: Dict[GlobalState, Tuple[GlobalState, ...]] = {}
        probabilities: Dict[tuple, Fraction] = {}

        def embed(node: GlobalState) -> GlobalState:
            ask = self._embed_state(node, tree.adversary, index, strategy, 0)
            offered = self._embed_state(node, tree.adversary, index, strategy, 1)
            children[ask] = (offered,)
            probabilities[(ask, offered)] = ONE
            kids = tree.children(node)
            if kids:
                embedded_kids = tuple(embed(child) for child in kids)
                children[offered] = embedded_kids
                for child, embedded_child in zip(kids, embedded_kids):
                    probabilities[(offered, embedded_child)] = tree.edge_probability(
                        node, child
                    )
            return ask

        root = embed(tree.root)
        return ComputationTree((tree.adversary, index), root, children, probabilities)

    # ------------------------------------------------------------------
    # Correspondences
    # ------------------------------------------------------------------

    def _base_state_of(self, state: GlobalState) -> GlobalState:
        env: _EmbedEnv = state.environment  # type: ignore[assignment]
        locals_ = list(state.local_states)
        locals_[self.agent] = locals_[self.agent][0]
        return GlobalState(env.base_environment, tuple(locals_))

    def embed_fact(self, fact: Fact) -> Fact:
        """Pull a propositional (state-determined) base fact back to ``R^phi``.

        Condition 3 of the construction: the truth value at ``(r_f, 2m)``
        and ``(r_f, 2m+1)`` equals the value at ``(r, m)``.
        """
        if not is_fact_about_global_state(self.base.system, fact):
            raise BettingError(
                "Theorem 11 is stated for propositional facts; "
                f"{fact.name} is not determined by the global state"
            )
        base_system = self.base.system
        truth: Dict[GlobalState, bool] = {}
        for point in base_system.points:
            truth.setdefault(point.global_state, fact.holds_at(point))
        return Fact(
            lambda point: truth[self._base_state_of(point.global_state)],
            name=f"embed({fact.name})",
        )

    def phase_point(self, base_point: Point, strategy_index: int, phase: int) -> Point:
        """``c_f`` (phase 0) or ``c_f^+`` (phase 1) for a base point ``c``."""
        key = (strategy_index, base_point.global_state, phase)
        try:
            return self._phase_points[key]
        except KeyError:
            raise BettingError("base point has no embedded counterpart") from None


def theorem11_closure(
    base: ProbabilisticSystem, opponent: int, seed_strategies: Sequence[Strategy]
) -> Tuple[Strategy, ...]:
    """Close a strategy family as the (c)=>(b) direction of the proof needs.

    The proof picks, for a point ``d_g`` whose opponent state is ``t`` and a
    payoff ``beta`` the agent may hear, an *injective* strategy ``h`` with
    ``h(t) = beta``.  The theorem quantifies over all strategies, so in the
    paper every such ``h`` exists; for a finite family we must add them:
    for every payoff realized by a seed strategy at any state (including the
    no-bet outcome) and every opponent state ``t``, an injective strategy
    offering exactly that payoff at ``t``.
    """
    locals_ = opponent_states(base.system, opponent, base.system.points)
    realized = {
        strategy.payoff(local) for strategy in seed_strategies for local in locals_
    }
    no_bet_realized = NO_BET in realized
    alphabet = sorted(payoff for payoff in realized if payoff is not NO_BET)
    filler = Fraction(2)
    while len(alphabet) < max(len(locals_), 1):
        if filler not in alphabet:
            alphabet.append(filler)
        filler += 1
    alphabet.sort()

    def injective_from_alphabet(states, pinned_state=None, pinned_payoff=None):
        table: dict = {}
        if pinned_state is not None:
            table[pinned_state] = pinned_payoff
        pool = [payoff for payoff in alphabet if payoff != pinned_payoff]
        index = 0
        for state in states:
            if state in table:
                continue
            table[state] = pool[index]
            index += 1
        return Strategy(opponent, table, default=NO_BET, name="closure-injective")

    closed: List[Strategy] = list(seed_strategies)
    for payoff in alphabet:
        for local in locals_:
            closed.append(injective_from_alphabet(locals_, local, payoff))
    if no_bet_realized:
        for local in locals_:
            others = [other for other in locals_ if other != local]
            closed.append(injective_from_alphabet(others))
    return tuple(closed)


def build_embedded_system(
    base: ProbabilisticSystem,
    agent: int,
    opponent: int,
    strategies: Sequence[Strategy],
    close_family: bool = True,
) -> EmbeddedSystem:
    """Construct ``R^phi`` over the given (optionally closed) family."""
    family = (
        theorem11_closure(base, opponent, strategies) if close_family else tuple(strategies)
    )
    return EmbeddedSystem(base, agent, opponent, family)


def verify_theorem11(
    embedded: EmbeddedSystem,
    fact: Fact,
    alphas: Optional[Sequence] = None,
) -> VerificationReport:
    """Check the three-way equivalence of Theorem 11 exhaustively.

    Quantifies over every base point ``c``, every strategy ``f`` in the
    family, and a grid of thresholds ``alpha``.
    """
    base_opponent_pa = opponent_assignment(embedded.base, embedded.opponent)
    embedded_opponent_pa = opponent_assignment(embedded.psys, embedded.opponent)
    embedded_post_pa = ProbabilityAssignment(PostAssignment(embedded.psys))
    embedded_fact = embedded.embed_fact(fact)
    report = VerificationReport("Theorem 11", True, 0)
    base_points = embedded.base.system.points
    grid = (
        tuple(as_fraction(alpha) for alpha in alphas)
        if alphas is not None
        else relevant_alphas(
            base_opponent_pa, embedded.agent, fact, base_points
        )
    )
    for base_point in base_points:
        statement_a_cache: Dict[Fraction, bool] = {}
        for strategy_index in range(len(embedded.strategies)):
            ask = embedded.phase_point(base_point, strategy_index, 0)
            offered = embedded.phase_point(base_point, strategy_index, 1)
            for alpha in grid:
                if not ZERO < alpha <= ONE:
                    continue
                if alpha not in statement_a_cache:
                    statement_a_cache[alpha] = base_opponent_pa.knows_probability_at_least(
                        embedded.agent, base_point, fact, alpha
                    )
                statement_a = statement_a_cache[alpha]
                statement_b = embedded_opponent_pa.knows_probability_at_least(
                    embedded.agent, ask, embedded_fact, alpha
                )
                statement_c = embedded_post_pa.knows_probability_at_least(
                    embedded.agent, offered, embedded_fact, alpha
                )
                report.checked += 1
                if not statement_a == statement_b == statement_c:
                    report.holds = False
                    report.add(
                        f"MISMATCH at time-{base_point.time} point, strategy "
                        f"{strategy_index}, alpha={alpha}: "
                        f"(a)={statement_a} (b)={statement_b} (c)={statement_c}"
                    )
    report.add(
        f"checked {report.checked} (point, strategy, alpha) triples; equivalence "
        f"{'holds' if report.holds else 'FAILS'}"
    )
    return report
