"""Parameter sweeps and guarantee thresholds for coordinated attack."""

from fractions import Fraction

import pytest

from repro.attack import (
    achieves,
    assignment_for,
    build_ca1,
    build_ca1_adaptive,
    build_ca2,
    crossover_messengers,
    guarantee_sweep,
    post_threshold,
    prior_threshold,
    run_level_probability,
    threshold_is_exact,
)


class TestPostThreshold:
    def test_ca2_closed_form(self):
        # min( A's confidence 1-2**-k , B's silent confidence )
        for k in (2, 3, 4):
            attack = build_ca2(messengers=k)
            a_confidence = 1 - Fraction(1, 2**k)
            b_confidence = Fraction(1, 2) / (Fraction(1, 2) + Fraction(1, 2 ** (k + 1)))
            assert post_threshold(attack) == min(a_confidence, b_confidence)

    def test_ca1_threshold_is_zero(self):
        # the doomed-but-attacking point pins the minimum at 0
        assert post_threshold(build_ca1(messengers=3)) == 0

    def test_adaptive_ca1_positive(self):
        assert post_threshold(build_ca1_adaptive(messengers=3)) > Fraction(1, 2)

    def test_threshold_matches_gfp_semantics(self):
        for attack in (build_ca2(messengers=2), build_ca1_adaptive(messengers=2)):
            assert threshold_is_exact(attack)

    def test_prior_threshold_is_run_level(self):
        attack = build_ca2(messengers=3)
        assert prior_threshold(attack) == run_level_probability(attack)


class TestSweep:
    def test_rows_cover_grid(self):
        rows = guarantee_sweep([2, 3], [Fraction(1, 2)], epsilon=Fraction(3, 4))
        assert len(rows) == 2 * 3  # three default protocols

    def test_monotone_in_messengers(self):
        rows = guarantee_sweep([1, 2, 3, 4], [Fraction(1, 2)])
        ca2_thresholds = [
            row.post_threshold
            for row in rows
            if row.protocol == "CA2"
        ]
        assert ca2_thresholds == sorted(ca2_thresholds)

    def test_monotone_in_loss(self):
        rows = guarantee_sweep([3], [Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)])
        ca2 = [row for row in rows if row.protocol == "CA2"]
        ordered = sorted(ca2, key=lambda row: row.loss)
        thresholds = [row.post_threshold for row in ordered]
        assert thresholds == sorted(thresholds, reverse=True)

    def test_eps_flag_consistent(self):
        rows = guarantee_sweep([2, 3], [Fraction(1, 2)], epsilon=Fraction(4, 5))
        for row in rows:
            assert row.achieves_99_post == (row.post_threshold >= Fraction(4, 5))


class TestCrossover:
    def test_ca2_crossover_99(self):
        # A's confidence 1 - 2**-k >= 99/100 first at k = 7
        crossover = crossover_messengers(
            lambda k, loss: build_ca2(k, loss), Fraction(99, 100)
        )
        assert crossover == 7

    def test_ca2_crossover_three_quarters(self):
        crossover = crossover_messengers(
            lambda k, loss: build_ca2(k, loss), Fraction(3, 4)
        )
        assert crossover == 2

    def test_ca1_never_crosses(self):
        crossover = crossover_messengers(
            lambda k, loss: build_ca1(k, loss), Fraction(1, 2), max_messengers=4
        )
        assert crossover is None

    def test_crossover_certified_by_achieves(self):
        crossover = crossover_messengers(
            lambda k, loss: build_ca2(k, loss), Fraction(9, 10), max_messengers=8
        )
        assert crossover is not None
        below = build_ca2(messengers=crossover - 1)
        at = build_ca2(messengers=crossover)
        assert achieves(at, assignment_for(at, "post"), Fraction(9, 10))
        assert not achieves(below, assignment_for(below, "post"), Fraction(9, 10))


class TestRowProvenance:
    def test_witness_attains_the_threshold(self):
        from repro.attack import post_threshold_witness

        attack = build_ca2(messengers=2)
        threshold, agent, point = post_threshold_witness(attack)
        assert threshold == post_threshold(attack)
        post = assignment_for(attack, "post")
        assert post.inner_probability(agent, point, attack.coordinated) == threshold
        assert agent in attack.group

    def test_witness_is_deterministic(self):
        from repro.attack import post_threshold_witness

        attack = build_ca2(messengers=2)
        assert post_threshold_witness(attack) == post_threshold_witness(attack)

    def test_row_derivation_explains_the_threshold(self):
        from repro.attack import row_provenance_derivation
        from repro.logic import audit_derivation, Model
        from repro.reporting import fraction_from_json

        attack = build_ca2(messengers=2)
        derivation = row_provenance_derivation(attack)
        assert derivation.holds  # Pr >= threshold holds at its own argmin
        assert derivation.assignment == "post"
        alpha = fraction_from_json(derivation.root.detail["alpha"])
        assert alpha == post_threshold(attack)
        post = assignment_for(attack, "post")
        model = Model(post, {"coord": attack.coordinated})
        assert audit_derivation(model, derivation) == []

    def test_provenance_sweep_rows_equal_plain_rows(self):
        from repro.obs import ProvenanceRecorder, use_recorder

        plain = guarantee_sweep([1, 2], [Fraction(1, 2)])
        recorder = ProvenanceRecorder()
        with use_recorder(recorder):
            instrumented = guarantee_sweep([1, 2], [Fraction(1, 2)], provenance=True)
        assert instrumented == plain
        derivations = recorder.derivations
        assert len(derivations) == len(plain)
        # events arrive in row order: each derivation proves its row's
        # threshold (the alpha of the Pr >= alpha formula it explains)
        from repro.reporting import fraction_from_json

        for row, derivation in zip(plain, derivations):
            assert derivation.holds
            alpha = fraction_from_json(derivation.root.detail["alpha"])
            assert alpha == row.post_threshold

    def test_provenance_defaults_off(self):
        from repro.obs import ProvenanceRecorder, use_recorder

        recorder = ProvenanceRecorder()
        with use_recorder(recorder):
            guarantee_sweep([1], [Fraction(1, 2)])
        assert recorder.of_kind("row_provenance") == []
