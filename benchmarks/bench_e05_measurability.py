"""E05 -- Proposition 3: measurability in synchronous systems.

Paper claims: in a synchronous system, with a consistent standard
assignment and a state-generated language, every fact of L(Phi) is
measurable -- and this fails in asynchronous systems (Section 7).
"""

from repro.core import (
    Fact,
    PostAssignment,
    ProbabilityAssignment,
    non_measurable_sites,
    standard_assignments,
)
from repro.examples_lib import repeated_coin_system, three_agent_coin_system
from repro.logic import Model, generate_language, state_generated_valuation
from repro.reporting import print_table


def run_experiment():
    sync = three_agent_coin_system()
    post = standard_assignments(sync.psys)["post"]
    valuation = state_generated_valuation(sync.psys.system)
    model = Model(post, valuation)
    formulas = generate_language(
        sorted(valuation),
        depth=2,
        agents=[0, 2],
        alphas=["1/2"],
        max_formulas=150,
    )
    sync_failures = 0
    for formula in formulas:
        fact = model.fact_of(formula)
        if non_measurable_sites(post, fact):
            sync_failures += 1

    async_example = repeated_coin_system(3)
    async_post = ProbabilityAssignment(PostAssignment(async_example.psys))
    async_sites = non_measurable_sites(async_post, async_example.most_recent_heads)
    return len(formulas), sync_failures, len(async_sites)


def test_e05_proposition3(benchmark):
    checked, sync_failures, async_sites = benchmark(run_experiment)
    print_table(
        "E05  Proposition 3: measurability of L(Phi)",
        ["system", "facts checked", "non-measurable (paper)", "non-measurable (measured)"],
        [
            ("synchronous coin", checked, 0, sync_failures),
            ("async 3-toss coin", 1, ">0", async_sites),
        ],
    )
    assert sync_failures == 0
    assert async_sites > 0
