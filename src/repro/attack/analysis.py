"""Analysis of probabilistic coordinated attack (Proposition 11).

The specification: ``C_G^eps phi_CA`` holds at all points -- probabilistic
common knowledge, among the two generals, that "A attacks iff B attacks".
Which protocols meet it depends entirely on the probability assignment:

=============  =========  =========  =========
protocol       P_prior    P_post     P_fut
=============  =========  =========  =========
CA1            achieves   fails      fails
CA2            achieves   achieves   fails
CA0 (silent)   achieves   achieves   achieves (but never attacks)
=============  =========  =========  =========

This module computes every cell of that table, the run-level coordination
probability (``1 - 2**-(k+1)`` for ``k`` messengers), and the Section 4
pathology: the CA1 point at which general A is *certain* the attack will
fail yet attacks anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..core.assignments import ProbabilityAssignment
from ..core.facts import Fact
from ..core.model import Point
from ..core.standard import standard_assignments
from ..logic.common_knowledge import common_knowledge_points, everyone_knows_points
from ..logic.semantics import Model
from ..probability.fractionutil import ONE, ZERO, FractionLike, as_fraction
from .protocols import GENERAL_A, AttackSystem


def run_level_probability(attack: AttackSystem) -> Fraction:
    """The probability, over the runs, that the attack is coordinated."""
    total = ZERO
    for adversary in attack.psys.adversaries:
        tree = attack.psys.tree(adversary)
        for run in tree.runs:
            if attack.coordinated.holds_at(next(iter(run.points()))):
                total += tree.run_probability(run)
    return total / len(attack.psys.adversaries)


def conditional_coordination(attack: AttackSystem) -> Fraction:
    """FZ88a's stronger run-level condition (end of Section 8).

    The conditional probability, over the runs, that both parties attack
    together given that at least one attacks.  For CA1/CA2 with ``k``
    messengers this is ``P(B learned | heads) = 1 - 2**-k``.
    """
    someone = ZERO
    both = ZERO
    for adversary in attack.psys.adversaries:
        tree = attack.psys.tree(adversary)
        for run in tree.runs:
            point = next(iter(run.points()))
            a_attacks = attack.a_attacks.holds_at(point)
            b_attacks = attack.b_attacks.holds_at(point)
            probability = tree.run_probability(run)
            if a_attacks or b_attacks:
                someone += probability
            if a_attacks and b_attacks:
                both += probability
    if someone == ZERO:
        raise ValueError("nobody ever attacks; the conditional is undefined")
    return both / someone


def assignment_for(attack: AttackSystem, name: str) -> ProbabilityAssignment:
    """The named standard probability assignment over the attack system."""
    return standard_assignments(attack.psys)[name]


def achieves(
    attack: AttackSystem,
    assignment: ProbabilityAssignment,
    epsilon: FractionLike = Fraction(99, 100),
) -> bool:
    """Does ``C_G^eps phi_CA`` hold at every point under this assignment?"""
    threshold = as_fraction(epsilon)
    model = Model(assignment, {})
    target = attack.coordinated.points(attack.psys.system)
    common = common_knowledge_points(model, attack.group, target, threshold)
    return common == frozenset(attack.psys.system.points)


def everyone_knows_at_all_points(
    attack: AttackSystem,
    assignment: ProbabilityAssignment,
    epsilon: FractionLike = Fraction(99, 100),
) -> bool:
    """Does ``E_G^eps phi_CA`` hold at every point?  (With the induction
    rule, this is how the paper argues ``C_G^eps`` holds everywhere.)"""
    threshold = as_fraction(epsilon)
    model = Model(assignment, {})
    target = attack.coordinated.points(attack.psys.system)
    everyone = everyone_knows_points(model, attack.group, target, threshold)
    return everyone == frozenset(attack.psys.system.points)


def certain_failure_points(
    attack: AttackSystem, agent: int = GENERAL_A
) -> Tuple[Point, ...]:
    """Points where the agent *knows* the attack will not be coordinated.

    For CA1 these are the Section 4 states: A has decided to attack but has
    heard from B that B never learned the outcome.  For CA2 the tuple is
    empty -- that is the protocol's entire selling point.
    """
    system = attack.psys.system
    bad = []
    for point in system.points:
        if system.knows(agent, point, ~attack.coordinated):
            bad.append(point)
    return tuple(bad)


def doomed_but_attacking_points(attack: AttackSystem) -> Tuple[Point, ...]:
    """Certain-failure points lying on runs where A does attack."""
    return tuple(
        point
        for point in certain_failure_points(attack)
        if attack.a_attacks.holds_at(point)
    )


@dataclass
class Proposition11Row:
    """One row of the Proposition 11 table."""

    protocol: str
    run_level: Fraction
    prior: bool
    post: bool
    fut: bool
    certain_failure_count: int


def proposition11_row(
    attack: AttackSystem, epsilon: FractionLike = Fraction(99, 100)
) -> Proposition11Row:
    """Evaluate one protocol against all three named assignments."""
    assignments = standard_assignments(attack.psys)
    return Proposition11Row(
        protocol=attack.name,
        run_level=run_level_probability(attack),
        prior=achieves(attack, assignments["prior"], epsilon),
        post=achieves(attack, assignments["post"], epsilon),
        fut=achieves(attack, assignments["fut"], epsilon),
        certain_failure_count=len(doomed_but_attacking_points(attack)),
    )


def proposition11_table(
    attacks: List[AttackSystem], epsilon: FractionLike = Fraction(99, 100)
) -> List[Proposition11Row]:
    """The full Proposition 11 comparison across protocols."""
    return [proposition11_row(attack, epsilon) for attack in attacks]


def prior_inconsistency_witness(attack: AttackSystem) -> Optional[Point]:
    """A point where ``P_prior`` says coordination is highly probable while
    the agent knows coordination fails -- the inconsistent-assignment
    pathology the end of Section 8 warns about (``K^eps phi`` and
    ``K ~phi`` simultaneously)."""
    prior = assignment_for(attack, "prior")
    system = attack.psys.system
    for point in doomed_but_attacking_points(attack):
        if prior.knows_probability_at_least(
            GENERAL_A, point, attack.coordinated, Fraction(99, 100)
        ):
            return point
    return None


def b_conditional_confidence(attack: AttackSystem) -> Fraction:
    """B's posterior confidence in coordination after hearing nothing.

    The Section 4 computation for CA2: either the coin landed tails
    (probability 1/2) or it landed heads and every messenger was lost
    (probability ``2**-(k+1)``), so the conditional probability of
    coordination given silence is ``(1/2) / (1/2 + 2**-(k+1))``.
    """
    post = assignment_for(attack, "post")
    system = attack.psys.system
    candidates = [
        point
        for point in system.points
        if point.time >= 1
        and _protocol_state(point.local_state(1)) == "no-news"
    ]
    if not candidates:
        raise ValueError("no silent-B points in this system")
    values = {
        post.inner_probability(1, point, attack.coordinated) for point in candidates
    }
    if len(values) != 1:
        raise ValueError(f"B's silent confidence is not uniform: {values}")
    return values.pop()


def _protocol_state(local) -> object:
    if isinstance(local, tuple) and len(local) == 2 and isinstance(local[1], int):
        return local[0]
    return local
