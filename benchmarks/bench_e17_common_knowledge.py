"""E17 -- Section 8 / FH88: probabilistic common knowledge laws.

Paper claims: C_G^alpha satisfies the fixed point axiom
C == E(phi & C) and the induction rule; it implies every iterate
(E^alpha)^k but is not their conjunction.
"""

from fractions import Fraction

from repro.attack import build_ca1, build_ca2
from repro.core import standard_assignments
from repro.logic import (
    Model,
    Prop,
    common_knowledge_points,
    fixed_point_axiom_holds,
    induction_rule_holds,
    iterated_everyone_knows,
    parse,
)
from repro.reporting import print_table

EPS = Fraction(4, 5)


def run_experiment():
    results = {}
    for name, attack in (("CA1", build_ca1(messengers=3)), ("CA2", build_ca2(messengers=3))):
        post = standard_assignments(attack.psys)["post"]
        model = Model(post, {"coord": attack.coordinated})
        target = model.extension(Prop("coord"))
        common = common_knowledge_points(model, attack.group, target, EPS)
        chain = iterated_everyone_knows(model, attack.group, target, 3, alpha=EPS)
        results[name] = {
            "fixed_point": fixed_point_axiom_holds(model, attack.group, Prop("coord"), alpha=EPS),
            "induction": induction_rule_holds(
                model, attack.group, parse("true"), Prop("coord"), alpha=EPS
            ),
            "common_size": len(common),
            "chain_sizes": [len(level) for level in chain],
            "common_below_chain": all(common <= level for level in chain),
            "total_points": len(model.system.points),
        }
    return results


def test_e17_common_knowledge(benchmark):
    results = benchmark(run_experiment)
    rows = []
    for name, data in results.items():
        rows.append(
            (
                name,
                data["fixed_point"],
                data["induction"],
                f"{data['common_size']}/{data['total_points']}",
                "-".join(map(str, data["chain_sizes"])),
            )
        )
    print_table(
        "E17  probabilistic common knowledge (alpha = 4/5, 3 messengers)",
        ["protocol", "fixed-point axiom", "induction rule", "|C^a| / points", "|E^a|,|E^a E^a|,..."],
        rows,
    )
    for data in results.values():
        assert data["fixed_point"] and data["induction"] and data["common_below_chain"]
    # CA2 has C^a everywhere; CA1 does not
    assert results["CA2"]["common_size"] == results["CA2"]["total_points"]
    assert results["CA1"]["common_size"] < results["CA1"]["total_points"]
