"""Repository tooling that is *not* part of the installed ``repro`` package.

``tools.reprolint`` is the project's AST-based invariant checker; run it
with ``python -m tools.reprolint src/repro`` from a checkout.
"""
