"""DOT output and tabular summaries."""

from repro.trees import run_table, system_summary, tree_to_dot
from repro.examples_lib import three_agent_coin_system
from repro.testing import random_psys, random_tree


class TestDot:
    def test_valid_shape(self):
        tree = random_tree(seed=3, depth=2)
        dot = tree_to_dot(tree)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")

    def test_one_node_line_per_node(self):
        tree = random_tree(seed=3, depth=2)
        dot = tree_to_dot(tree)
        node_lines = [line for line in dot.splitlines() if "[label=" in line and "->" not in line]
        assert len(node_lines) == len(tree.nodes)

    def test_one_edge_line_per_edge(self):
        tree = random_tree(seed=3, depth=2)
        dot = tree_to_dot(tree)
        edge_lines = [line for line in dot.splitlines() if "->" in line]
        assert len(edge_lines) == len(tree.edges)

    def test_custom_describe_and_quotes(self):
        tree = three_agent_coin_system().psys.trees[0]
        dot = tree_to_dot(tree, describe=lambda state: 'say "hi"')
        assert '\\"' not in dot  # quotes sanitised to apostrophes
        assert "say 'hi'" in dot


class TestTables:
    def test_run_table_rows(self):
        tree = random_tree(seed=4, depth=2)
        table = run_table(tree)
        assert len(table.splitlines()) == len(tree.runs) + 1

    def test_system_summary_rows(self):
        psys = random_psys(seed=4, num_trees=3, depth=1)
        summary = system_summary(psys)
        assert len(summary.splitlines()) == len(psys.adversaries) + 1
