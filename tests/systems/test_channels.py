"""Channels: perfect, lossy (exact), collapsing (binomial)."""

from fractions import Fraction

import pytest

from repro.errors import SimulationError
from repro.systems import (
    CollapsingLossyChannel,
    LossyChannel,
    Message,
    PerfectChannel,
)


def msg(content="m", sender=0, recipient=1):
    return Message(sender, recipient, content)


def total(branches):
    return sum(probability for probability, _ in branches)


class TestPerfectChannel:
    def test_delivers_everything(self):
        channel = PerfectChannel()
        sent = (msg("a"), msg("b"))
        ((probability, delivered),) = channel.deliveries(sent, 0)
        assert probability == 1
        assert set(delivered) == set(sent)


class TestLossyChannel:
    def test_parameter_validated(self):
        with pytest.raises(SimulationError):
            LossyChannel(Fraction(3, 2))

    def test_no_messages(self):
        channel = LossyChannel(Fraction(1, 2))
        assert channel.deliveries((), 0) == [(Fraction(1), ())]

    def test_total_probability(self):
        channel = LossyChannel(Fraction(1, 3))
        sent = (msg("a"), msg("b"), msg("c", recipient=2))
        assert total(channel.deliveries(sent, 0)) == 1

    def test_single_message_loss(self):
        channel = LossyChannel(Fraction(1, 4))
        branches = dict(
            (delivered, probability)
            for probability, delivered in channel.deliveries((msg("a"),), 0)
        )
        assert branches[(msg("a"),)] == Fraction(3, 4)
        assert branches[()] == Fraction(1, 4)

    def test_lossless_and_total_loss_shortcuts(self):
        sent = (msg("a"), msg("b"))
        assert LossyChannel(0).deliveries(sent, 0) == [(Fraction(1), sent)]
        assert LossyChannel(1).deliveries(sent, 0) == [(Fraction(1), ())]

    def test_identical_messages_merge(self):
        channel = LossyChannel(Fraction(1, 2))
        sent = (msg("a"), msg("a"))
        branches = dict(
            (delivered, probability)
            for probability, delivered in channel.deliveries(sent, 0)
        )
        # outcomes: 0, 1 or 2 copies delivered, with merged probabilities
        assert branches[(msg("a"), msg("a"))] == Fraction(1, 4)
        assert branches[(msg("a"),)] == Fraction(1, 2)
        assert branches[()] == Fraction(1, 4)

    def test_blowup_guard(self):
        channel = LossyChannel(Fraction(1, 2), max_messages=3)
        sent = tuple(msg(f"m{i}") for i in range(4))
        with pytest.raises(SimulationError):
            channel.deliveries(sent, 0)


class TestCollapsingLossyChannel:
    def test_matches_exact_channel_on_identical_messages(self):
        exact = LossyChannel(Fraction(1, 2))
        collapsed = CollapsingLossyChannel(Fraction(1, 2))
        sent = (msg("a"), msg("a"), msg("a"))
        exact_branches = dict(
            (delivered, probability)
            for probability, delivered in exact.deliveries(sent, 0)
        )
        collapsed_branches = dict(
            (delivered, probability)
            for probability, delivered in collapsed.deliveries(sent, 0)
        )
        assert exact_branches == collapsed_branches

    def test_branch_count_linear(self):
        channel = CollapsingLossyChannel(Fraction(1, 2))
        sent = tuple(msg("a") for _ in range(10))
        branches = channel.deliveries(sent, 0)
        assert len(branches) == 11
        assert total(branches) == 1

    def test_paper_delivery_probability(self):
        # ten messengers, loss 1/2: P(at least one survives) = 1 - 2**-10
        channel = CollapsingLossyChannel(Fraction(1, 2))
        sent = tuple(msg("coin") for _ in range(10))
        none_delivered = next(
            probability
            for probability, delivered in channel.deliveries(sent, 0)
            if not delivered
        )
        assert none_delivered == Fraction(1, 1024)

    def test_mixed_kinds_independent(self):
        channel = CollapsingLossyChannel(Fraction(1, 2))
        sent = (msg("a"), msg("b", recipient=2))
        branches = channel.deliveries(sent, 0)
        assert len(branches) == 4
        assert total(branches) == 1
