"""RL005 — no bare ``except:`` handlers."""

from __future__ import annotations

import ast
from typing import Iterator

from ..model import Module, Violation
from ..registry import Rule, register


@register
class BareExceptRule(Rule):
    rule_id = "RL005"
    title = "no bare except clauses"
    rationale = """\
A bare `except:` catches everything, including SystemExit,
KeyboardInterrupt and -- critically for this library -- the structured
errors that *are* the result of a check: Req1Error/Req2Error from
core.assignments, NotMeasurableError from the measure layer, and
BettingError from the game.  Swallowing one of those converts 'this
assignment violates REQ2 (Section 5)' into silent acceptance, which is
exactly the kind of unsound shortcut the exact-arithmetic design exists
to prevent.  Catch the narrowest exception type that the code can
actually handle."""

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.violation(
                    module, node,
                    "bare 'except:' (catch a specific exception type; "
                    "domain errors like Req1Error are results, not noise)",
                )
