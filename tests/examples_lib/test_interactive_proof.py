"""The quadratic-residuosity interactive proof (Section 9's application)."""

from fractions import Fraction

import pytest

from repro.errors import SimulationError
from repro.examples_lib import (
    acceptance_probability,
    completeness,
    qr_proof_system,
    quadratic_residues,
    soundness_error,
    square_roots,
    units,
    verifier_cannot_identify_witness,
    verifier_view_distribution,
    witness_indistinguishable,
)


class TestNumberTheory:
    def test_units_of_15(self):
        assert units(15) == (1, 2, 4, 7, 8, 11, 13, 14)

    def test_quadratic_residues_of_15(self):
        assert quadratic_residues(15) == frozenset({1, 4})

    def test_square_roots_of_4(self):
        assert square_roots(4, 15) == (2, 7, 8, 13)

    def test_roots_actually_square(self):
        for n in (15, 21):
            for x in quadratic_residues(n):
                for w in square_roots(x, n):
                    assert pow(w, 2, n) == x


@pytest.fixture(scope="module")
def proof():
    return qr_proof_system(rounds=1)


@pytest.fixture(scope="module")
def proof2():
    return qr_proof_system(rounds=2, randomness=(1, 14))


class TestStructure:
    def test_three_adversaries(self, proof):
        assert len(proof.honest_adversaries) == 2
        assert len(proof.cheating_adversaries) == 1

    def test_residue_validation(self):
        with pytest.raises(SimulationError):
            qr_proof_system(residue=2)  # 2 is a non-residue mod 15

    def test_non_residue_validation(self):
        with pytest.raises(SimulationError):
            qr_proof_system(non_residue=4)

    def test_randomness_must_be_negation_closed(self):
        with pytest.raises(SimulationError):
            qr_proof_system(randomness=(1, 2))


class TestCompleteness:
    def test_honest_always_accepted(self, proof):
        assert completeness(proof)

    def test_per_adversary_probability_one(self, proof):
        for adversary in proof.honest_adversaries:
            assert acceptance_probability(proof, adversary) == 1

    def test_two_rounds(self, proof2):
        assert completeness(proof2)


class TestSoundness:
    def test_one_round_half(self, proof):
        assert soundness_error(proof) == Fraction(1, 2)

    def test_two_rounds_quarter(self, proof2):
        assert soundness_error(proof2) == Fraction(1, 4)

    def test_rounds_compound(self):
        three = qr_proof_system(rounds=3, randomness=(1, 14))
        assert soundness_error(three) == Fraction(1, 8)

    def test_other_modulus(self):
        proof21 = qr_proof_system(modulus=21, rounds=1, randomness=(1, 20))
        assert completeness(proof21)
        assert soundness_error(proof21) == Fraction(1, 2)


class TestZeroKnowledge:
    def test_views_identically_distributed(self, proof):
        assert witness_indistinguishable(proof)

    def test_view_distribution_sums_to_one(self, proof):
        for adversary in proof.honest_adversaries:
            distribution = verifier_view_distribution(proof, adversary)
            assert sum(distribution.values()) == 1

    def test_knowledge_reading(self, proof):
        # at every point the verifier considers the other witness possible
        assert verifier_cannot_identify_witness(proof)

    def test_verifier_distinguishes_honest_from_caught_cheater(self, proof):
        # after a rejected round, the verifier knows it is not in an honest
        # tree (honest provers never fail)
        system = proof.psys.system
        (cheat,) = proof.cheating_adversaries
        rejected = [
            point
            for point in proof.psys.points_of_tree(cheat)
            if point.time >= 1 and not proof.accepted.holds_at(point)
        ]
        assert rejected
        for point in rejected[:4]:
            knowledge = system.knowledge_set(0, point)
            adversaries = {proof.psys.adversary_of(candidate) for candidate in knowledge}
            assert adversaries == {cheat}

    def test_accepting_verifier_still_uncertain(self, proof):
        # an accepting transcript is consistent with both honest trees AND
        # with a lucky cheater: soundness is only probabilistic
        system = proof.psys.system
        accepting = [
            point
            for point in proof.psys.points_of_tree(proof.honest_adversaries[0])
            if point.time == proof.rounds and proof.accepted.holds_at(point)
        ]
        point = accepting[0]
        adversaries = {
            proof.psys.adversary_of(candidate)
            for candidate in system.knowledge_set(0, point)
        }
        assert set(proof.honest_adversaries) <= adversaries
        assert set(proof.cheating_adversaries) <= adversaries


class TestZeroKnowledgeSimulator:
    def test_simulator_matches_real_view(self, proof):
        from repro.examples_lib import (
            simulated_view_distribution,
            verifier_view_distribution,
            zero_knowledge,
        )

        assert zero_knowledge(proof)
        real = verifier_view_distribution(proof, proof.honest_adversaries[0])
        simulated = simulated_view_distribution(proof)
        assert sum(simulated.values()) == 1
        assert real == simulated

    def test_two_round_simulation(self):
        from repro.examples_lib import zero_knowledge

        assert zero_knowledge(qr_proof_system(rounds=2))

    def test_restricted_coins_guarded(self):
        from repro.examples_lib import zero_knowledge

        restricted = qr_proof_system(rounds=1, randomness=(1, 14))
        with pytest.raises(SimulationError):
            zero_knowledge(restricted)

    def test_simulator_never_uses_a_root(self, proof):
        # the simulator's support only contains valid ("ok") transcripts,
        # yet it was built from z and b alone -- no square root involved.
        from repro.examples_lib import simulated_view_distribution

        for view in simulated_view_distribution(proof):
            assert all(entry[3] == "ok" for entry in view)
