"""Bounded language generation and extension closures."""

import pytest

from repro.core import standard_assignments
from repro.logic import (
    And,
    Knows,
    Next,
    Not,
    PrAtLeast,
    Prop,
    Until,
    boolean_closure_extensions,
    formula_depth,
    generate_language,
    state_generated_valuation,
)
from repro.testing import two_agent_coin_psys


class TestGenerateLanguage:
    def test_depth_zero_is_primitives(self):
        formulas = generate_language(["p", "q"], depth=0)
        assert formulas == [Prop("p"), Prop("q")]

    def test_depth_one_contains_all_unary(self):
        formulas = set(generate_language(["p"], depth=1, agents=[0], alphas=["1/2"]))
        assert Not(Prop("p")) in formulas
        assert Knows(0, Prop("p")) in formulas
        assert Next(Prop("p")) in formulas
        assert And(Prop("p"), Prop("p")) in formulas
        assert Until(Prop("p"), Prop("p")) in formulas
        assert any(isinstance(formula, PrAtLeast) for formula in formulas)

    def test_no_temporal_flag(self):
        formulas = generate_language(["p"], depth=2, include_temporal=False)
        assert not any(
            isinstance(formula, (Next, Until))
            for formula in formulas
        )

    def test_deduplication(self):
        formulas = generate_language(["p"], depth=3)
        assert len(formulas) == len(set(formulas))

    def test_cap_respected(self):
        formulas = generate_language(
            ["p", "q", "r"], depth=4, agents=[0, 1], alphas=["1/3", "2/3"], max_formulas=50
        )
        assert len(formulas) == 50

    def test_depth_bound(self):
        formulas = generate_language(["p"], depth=2, include_temporal=False)
        assert max(formula_depth(formula) for formula in formulas) <= 2


class TestStateGeneratedValuation:
    def test_covers_all_states(self):
        psys = two_agent_coin_psys()
        valuation = state_generated_valuation(psys.system)
        states = {point.global_state for point in psys.system.points}
        assert len(valuation) == len(states)

    def test_measurable_under_post(self):
        psys = two_agent_coin_psys()
        post = standard_assignments(psys)["post"]
        valuation = state_generated_valuation(psys.system)
        for fact in valuation.values():
            assert post.is_measurable(fact)


class TestBooleanClosureExtensions:
    def test_contains_complements_and_meets(self):
        universe = frozenset(range(6))
        base = [frozenset({0, 1, 2}), frozenset({2, 3})]
        closed = boolean_closure_extensions(base, universe)
        closed_set = set(closed)
        assert universe - frozenset({0, 1, 2}) in closed_set
        assert frozenset({2}) in closed_set

    def test_cap(self):
        universe = frozenset(range(10))
        base = [frozenset({i}) for i in range(10)]
        closed = boolean_closure_extensions(base, universe, cap=20)
        assert len(closed) <= 20
