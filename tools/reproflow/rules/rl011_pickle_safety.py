"""RL011 — task payloads must be picklable module-level callables."""

from __future__ import annotations

from typing import Iterator, Set, Tuple

from ...reprolint.model import Violation
from ..program import Program
from .base import BUILDER_REGISTRIES, FlowRule, POOL_ENTRY_POINTS, register


@register
class PickleSafetyRule(FlowRule):
    rule_id = "RL011"
    title = "pool payloads must be module-level (picklable) callables"
    rationale = """\
parallel_map ships payloads to a ProcessPoolExecutor, and the
robustness engine's checkpoint layer fingerprints task functions by
qualified name.  Both contracts require module-level callables:
a lambda or a function defined inside another function cannot be
pickled (``AttributeError: Can't get attribute '<locals>'``), and the
failure surfaces only when max_workers > 1 on a platform using the
spawn start method -- i.e. in CI or on a reviewer's laptop, not in the
serial tests.  Worse, a closure capturing a module-mutable object would
pickle the *current* state and silently desynchronise workers.

This rule inspects every call site of the task-distribution entry
points (run_tasks, parallel_map, sweep_tasks) plus the sweep builder
registry, and flags payloads that are lambdas or nested functions.
Payloads it cannot resolve statically (a parameter forwarded from
elsewhere) are not judged -- the call sites that *fill* that parameter
are.  Fix by hoisting the payload to module level and passing its data
through the task tuple; a payload that provably never crosses a process
boundary may be waived with ``# reproflow: disable=RL011``."""

    def check_program(self, program: Program) -> Iterator[Violation]:
        reported: Set[Tuple[str, int, str]] = set()
        for site in program.payload_sites():
            if not any(fqn in POOL_ENTRY_POINTS for fqn in site.callee_fqns):
                continue
            entry = next(
                fqn for fqn in site.callee_fqns if fqn in POOL_ENTRY_POINTS
            )
            payload = site.payload
            kind = payload.get("kind")
            findings = []
            if kind == "lambda":
                findings.append(
                    (int(payload.get("line", site.line)), "a lambda")
                )
            elif kind == "refs":
                for ref in payload.get("refs", []):  # type: ignore[union-attr]
                    if ref and ref[0] == "lambda":
                        findings.append((int(ref[1]), "a lambda"))
                        continue
                    for fqn in program.resolve_ref(site.caller, ref):
                        record = program.functions[fqn].record
                        if record.get("nested"):
                            findings.append(
                                (
                                    site.line,
                                    f"the nested function '{fqn}' "
                                    "(defined inside another function)",
                                )
                            )
            for line, what in findings:
                key = (site.caller.path, line, what)
                if key in reported:
                    continue
                reported.add(key)
                yield self.flow_violation(
                    site.caller,
                    line,
                    f"task payload passed to {entry} is {what}; it cannot "
                    "be pickled across the process-pool boundary -- hoist "
                    "it to a module-level function and pass data through "
                    "the task tuple",
                )
        for module_name, const_name in BUILDER_REGISTRIES:
            summary = program.modules.get(module_name)
            if summary is None:
                continue
            for kind, value in program.registry_payloads(module_name, const_name):
                if kind != "lambda":
                    continue
                line = int(value)  # the lambda's line number
                key = (str(summary["path"]), line, "registry-lambda")
                if key in reported:
                    continue
                reported.add(key)
                yield Violation(
                    path=str(summary["path"]),
                    line=line,
                    col=0,
                    rule_id=self.rule_id,
                    message=(
                        f"builder registry {module_name}.{const_name} maps to "
                        "a lambda; registry values become task payloads and "
                        "must be module-level (picklable) functions"
                    ),
                )


__all__ = ["PickleSafetyRule"]
