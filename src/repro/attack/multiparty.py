"""Coordinated attack with more than two generals.

A natural stress test of the Section 8 analysis: general A tosses the coin
and sends messenger bundles to each of ``n - 1`` lieutenants; everyone
attacks iff they believe the coin landed heads.  Coordination now requires
*all* generals to agree, the run-level probability degrades with the number
of lieutenants, and probabilistic common knowledge must hold for the whole
group -- the lattice story (prior achieved, post achieved by the silent
protocol, fut never) is unchanged, which is exactly the point.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, List, Sequence, Tuple

from ..core.facts import Fact
from ..core.model import Run
from ..errors import SimulationError
from ..probability.fractionutil import FractionLike, ONE, ZERO, as_fraction
from ..systems.agents import Agent, ActionDistribution, act, certainly, chance
from ..systems.channels import CollapsingLossyChannel
from ..systems.messages import Message
from ..systems.synchronous import SyncProtocol, protocol_system
from .protocols import COIN_NEWS, AttackSystem


class CommandingGeneral(Agent):
    """General A: tosses, broadcasts messenger bundles, decides."""

    def __init__(self, messengers: int, lieutenants: int) -> None:
        self.messengers = messengers
        self.lieutenants = lieutenants

    def initial_state(self, input_value):
        return "init"

    def step(self, state, inbox, round_number: int) -> ActionDistribution:
        if round_number == 0:
            bundle = tuple(
                Message(0, lieutenant, COIN_NEWS)
                for lieutenant in range(1, self.lieutenants + 1)
                for _ in range(self.messengers)
            )
            return chance(
                [
                    (Fraction(1, 2), act("heads", *bundle)),
                    (Fraction(1, 2), act("tails")),
                ]
            )
        if round_number == 1:
            decision = "attack" if state == "heads" else "no-attack"
            return certainly((state, decision))
        return certainly(state)


class Lieutenant(Agent):
    """A lieutenant: attacks iff at least one messenger got through."""

    def initial_state(self, input_value):
        return "init"

    def step(self, state, inbox, round_number: int) -> ActionDistribution:
        if round_number == 0:
            return certainly(state)
        if round_number == 1:
            learned = any(message.content == COIN_NEWS for message in inbox)
            decision = "attack" if learned else "no-attack"
            return certainly(("learned" if learned else "no-news", decision))
        return certainly(state)


def _attacks(run: Run, agent: int) -> bool:
    final = run.states[-1].local_states[agent]
    state = final[0] if isinstance(final, tuple) and isinstance(final[-1], int) else final
    return isinstance(state, tuple) and "attack" in state


def build_multiparty(
    lieutenants: int = 2,
    messengers: int = 4,
    loss: FractionLike = Fraction(1, 2),
) -> AttackSystem:
    """The silent (CA2-style) protocol with ``lieutenants + 1`` generals.

    Horizon 2: round 0 tosses and broadcasts, round 1 decides.  Everyone
    stays silent afterwards, so -- like CA2 -- nobody ever *knows* the
    attack fails, and the protocol achieves the ``P_post`` guarantee at the
    level of the weakest confidence in the group.
    """
    if lieutenants < 1:
        raise SimulationError("need at least one lieutenant")
    agents: List[Agent] = [CommandingGeneral(messengers, lieutenants)]
    agents.extend(Lieutenant() for _ in range(lieutenants))
    protocol = SyncProtocol(
        agents=agents,
        channel=CollapsingLossyChannel(as_fraction(loss)),
        horizon=2,
    )
    psys = protocol_system(protocol, {"the-enemy": [None] * (lieutenants + 1)})

    member_attacks = [
        Fact.about_run(lambda run, agent=agent: _attacks(run, agent), name=f"g{agent}_attacks")
        for agent in range(lieutenants + 1)
    ]
    coordinated = Fact.about_run(
        lambda run: len({_attacks(run, agent) for agent in range(lieutenants + 1)}) == 1,
        name="all_coordinated",
    )
    attack = AttackSystem(
        name=f"multi({lieutenants + 1} generals)",
        psys=psys,
        a_attacks=member_attacks[0],
        b_attacks=member_attacks[1],
        coordinated=coordinated,
        group=tuple(range(lieutenants + 1)),
    )
    return attack


def multiparty_run_level(lieutenants: int, messengers: int, loss: FractionLike) -> Fraction:
    """Closed form: ``1/2 + 1/2 * (1 - loss**messengers) ** lieutenants``.

    Tails coordinates always; heads coordinates iff every lieutenant got at
    least one messenger, independently per lieutenant.
    """
    capture = as_fraction(loss)
    delivered = ONE - capture**messengers
    return Fraction(1, 2) + Fraction(1, 2) * delivered**lieutenants
