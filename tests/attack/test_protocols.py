"""CA1/CA2/CA0 protocol structure."""

from fractions import Fraction

import pytest

from repro.attack import (
    GENERAL_A,
    GENERAL_B,
    build_ca1,
    build_ca2,
    build_never_attack,
)
from repro.core import is_fact_about_run


@pytest.fixture(scope="module")
def ca1():
    return build_ca1(messengers=3)


@pytest.fixture(scope="module")
def ca2():
    return build_ca2(messengers=3)


@pytest.fixture(scope="module")
def ca0():
    return build_never_attack(messengers=3)


class TestStructure:
    def test_synchronous(self, ca1, ca2):
        assert ca1.psys.system.is_synchronous()
        assert ca2.psys.system.is_synchronous()

    def test_ca1_has_report_branches(self, ca1, ca2):
        # B's report messenger can be lost: CA1 has more runs than CA2
        assert len(ca1.psys.system.runs) > len(ca2.psys.system.runs)

    def test_facts_are_about_runs(self, ca1):
        assert is_fact_about_run(ca1.psys.system, ca1.a_attacks)
        assert is_fact_about_run(ca1.psys.system, ca1.b_attacks)
        assert is_fact_about_run(ca1.psys.system, ca1.coordinated)

    def test_a_attacks_iff_heads(self, ca1):
        for run in ca1.psys.system.runs:
            heads = "heads" in repr(run.states[-1].local_states[GENERAL_A])
            attacked = ca1.a_attacks.holds_at(next(iter(run.points())))
            assert heads == attacked

    def test_b_attacks_only_if_learned(self, ca1):
        for run in ca1.psys.system.runs:
            learned = "learned-heads" in repr(run.states[-1].local_states[GENERAL_B])
            attacked = ca1.b_attacks.holds_at(next(iter(run.points())))
            assert attacked == learned

    def test_ca0_never_attacks(self, ca0):
        system = ca0.psys.system
        assert ca0.a_attacks.points(system) == frozenset()
        assert ca0.b_attacks.points(system) == frozenset()
        assert ca0.coordinated.points(system) == frozenset(system.points)


class TestUncoordinatedRuns:
    def test_ca1_uncoordinated_exactly_when_all_messengers_lost(self, ca1):
        bad_runs = [
            run
            for run in ca1.psys.system.runs
            if not ca1.coordinated.holds_at(next(iter(run.points())))
        ]
        # heads + all 3 messengers lost (x B's report delivered or lost)
        assert len(bad_runs) == 2
        for run in bad_runs:
            assert ca1.a_attacks.holds_at(next(iter(run.points())))
            assert not ca1.b_attacks.holds_at(next(iter(run.points())))

    def test_tails_runs_always_coordinated(self, ca2):
        for run in ca2.psys.system.runs:
            point = next(iter(run.points()))
            if not ca2.a_attacks.holds_at(point):
                assert ca2.coordinated.holds_at(point)


class TestScaling:
    @pytest.mark.parametrize("messengers", [1, 2, 5])
    def test_messenger_count_changes_tree_width(self, messengers):
        attack = build_ca2(messengers=messengers)
        # heads branch has messengers+1 delivery counts, tails has 1
        assert len(attack.psys.system.runs) == messengers + 2

    def test_custom_loss_probability(self):
        attack = build_ca2(messengers=2, loss=Fraction(1, 3))
        from repro.attack import run_level_probability

        # P(uncoordinated) = 1/2 * (1/3)**2
        assert run_level_probability(attack) == 1 - Fraction(1, 2) * Fraction(1, 9)
