"""Fault tolerance for production-scale runs of the reproduction.

The guarantee sweeps of Proposition 11 (Section 8) are the repo's first
production-shaped workload; this package keeps them delivering *exact*
answers under partial failure:

* :mod:`repro.robustness.engine` -- a fault-tolerant task engine with
  per-task timeouts, bounded retries under deterministic seeded backoff,
  and worker-crash recovery that requeues only incomplete tasks.
* :mod:`repro.robustness.checkpoint` -- streaming JSONL checkpoints of
  completed sweep rows (exact ``"p/q"`` Fractions) and resume that skips
  finished tasks while preserving the deterministic row order.
* :mod:`repro.robustness.faults` -- a deterministic fault-injection
  harness (scheduled worker kills, task raises, delays) so the chaos
  tests can *prove* recovered runs equal serial ones.
* :mod:`repro.robustness.validate` -- runtime validators for the paper's
  structural invariants (Sections 3-5), aggregating every violation into
  one :class:`~repro.robustness.validate.ValidationReport`.
"""

from .checkpoint import (
    SweepCheckpoint,
    default_audit_path,
    resume_guarantee_sweep,
    robust_guarantee_sweep,
    row_from_record,
    row_to_record,
    strict_sweep_row_of,
    task_fingerprint,
)
from .engine import (
    POOL_INFRASTRUCTURE_ERRORS,
    RetryPolicy,
    TaskAttempt,
    TaskContext,
    run_tasks,
)
from .faults import Fault, FaultInjectingTask, FaultPlan, InjectedFault
from .validate import (
    InvariantViolation,
    ValidationReport,
    validate_assignment,
    validate_space,
    validate_system,
    validate_tree,
)

__all__ = [
    "POOL_INFRASTRUCTURE_ERRORS",
    "Fault",
    "FaultInjectingTask",
    "FaultPlan",
    "InjectedFault",
    "InvariantViolation",
    "RetryPolicy",
    "SweepCheckpoint",
    "TaskAttempt",
    "TaskContext",
    "ValidationReport",
    "default_audit_path",
    "resume_guarantee_sweep",
    "robust_guarantee_sweep",
    "row_from_record",
    "row_to_record",
    "run_tasks",
    "strict_sweep_row_of",
    "task_fingerprint",
    "validate_assignment",
    "validate_space",
    "validate_system",
    "validate_tree",
]
