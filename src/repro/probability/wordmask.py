"""Word-array mask kernels: the ``"wordarray"`` measure backend.

Python-int bitmasks (:mod:`repro.probability.bitset`) are fast at the
1k-11k points the seed examples use, but every AND/OR/popcount walks a
30-bit digit array under the interpreter, one object at a time.  This
module re-represents masks as little-endian ``numpy.uint64`` arrays --
``n_words = ceil(n_bits / 64)`` words per mask -- so the same set algebra
runs as vectorized C loops over machine words:

* conversion at the :class:`~repro.probability.bitset.OutcomeIndex`
  boundary (:func:`mask_to_words` / :func:`words_to_mask` /
  :func:`stack_masks`), counted by the process-wide kernel totals;
* elementwise kernels (:func:`union_words`, :func:`intersect_words`,
  :func:`complement_words` with tail-word masking, :func:`subset_words`,
  :func:`popcount_words`);
* batched kernels over *collections* of masks: the stacked
  ``(n_rows, n_words)`` containment fold :func:`fold_contained_rows`,
  and -- because both sigma-algebra atoms and an agent's information
  classes *partition* their universe -- the :class:`PartitionKernel`,
  which answers "which blocks are wholly inside this target?" with one
  ``unpackbits`` + ``bincount`` pass instead of one subset test per
  block.  :class:`SpaceKernel` specialises that to the Section 5
  interval query ``(mu_*, mu^*, contained)`` with exact integer weight
  sums.

Exactness contract: numpy arrays live strictly *inside* this module.
Every weight sum crosses back to Python as an exact ``int`` (summed in
``int64`` only when the space's common denominator proves no overflow is
possible, in Python ints otherwise), and the space layer wraps those
ints into :class:`fractions.Fraction`.  No float is ever produced --
``tools/reproflow`` RL010 lists this module as a sanctioned numeric
boundary on that basis.

numpy is an *optional* dependency: when it is missing,
:func:`available` is False, ``set_default_backend("wordarray")``
degrades to ``"bitmask"``, and every kernel here raises
:class:`~repro.errors.BackendError` if called anyway.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, List, Sequence, Tuple

from ..errors import BackendError
from .bitset import count_mask_conversion, count_wordarray_query

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy
except ImportError:  # pragma: no cover
    numpy = None  # type: ignore[assignment]

__all__ = [
    "WORD_BITS",
    "PartitionKernel",
    "SpaceKernel",
    "available",
    "bits_of_words",
    "complement_words",
    "equal_words",
    "fold_contained_rows",
    "full_words",
    "intersect_words",
    "mask_to_words",
    "popcount_words",
    "stack_masks",
    "subset_words",
    "union_words",
    "word_count",
    "words_from_bits",
    "words_to_mask",
    "zero_words",
]

#: Bits per mask word (``numpy.uint64``).
WORD_BITS = 64


def available() -> bool:
    """True iff numpy is importable, i.e. the backend can actually run."""
    return numpy is not None


def _require():
    if numpy is None:
        raise BackendError(
            "the 'wordarray' backend needs numpy (install the 'wordarray' "
            "extra); set_default_backend falls back to 'bitmask' without it"
        )
    return numpy


def word_count(n_bits: int) -> int:
    """Words needed for an ``n_bits``-bit mask: ``ceil(n_bits / 64)``."""
    return (n_bits + WORD_BITS - 1) // WORD_BITS


# ----------------------------------------------------------------------
# int mask <-> word array conversion (the OutcomeIndex boundary)
# ----------------------------------------------------------------------


def mask_to_words(mask: int, n_words: int):
    """A Python-int mask as a little-endian ``uint64`` array of ``n_words``.

    Bit ``i`` of the mask is bit ``i % 64`` of word ``i // 64``.  Raises
    ``OverflowError`` if the mask does not fit -- callers clamp to the
    universe first.  Counted as one mask conversion in the kernel totals.
    """
    np = _require()
    count_mask_conversion()
    data = mask.to_bytes(n_words * 8, "little")
    # bytearray, not bytes: frombuffer on bytes yields a read-only array.
    return np.frombuffer(bytearray(data), dtype="<u8")


def words_to_mask(words) -> int:
    """The Python-int mask a word array encodes (inverse of
    :func:`mask_to_words`); counted as one mask conversion."""
    np = _require()
    count_mask_conversion()
    contiguous = np.ascontiguousarray(words, dtype="<u8")
    return int.from_bytes(contiguous.tobytes(), "little")


def stack_masks(masks: Sequence[int], n_words: int):
    """A ``(len(masks), n_words)`` matrix, one mask per row.

    This is the batched boundary crossing: all rows are serialised into
    one buffer, so downstream folds (:func:`fold_contained_rows`) touch
    a single contiguous matrix.  Counts ``len(masks)`` conversions.
    """
    np = _require()
    for _ in masks:
        count_mask_conversion()
    data = b"".join(mask.to_bytes(n_words * 8, "little") for mask in masks)
    return np.frombuffer(bytearray(data), dtype="<u8").reshape(len(masks), n_words)


def zero_words(n_words: int):
    """The empty mask as a word array."""
    np = _require()
    return np.zeros(n_words, dtype="<u8")


def full_words(n_bits: int):
    """The full ``n_bits``-universe mask, with the tail word masked."""
    np = _require()
    n_words = word_count(n_bits)
    words = np.full(n_words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype="<u8")
    tail = n_bits % WORD_BITS
    if n_words and tail:
        words[-1] = np.uint64((1 << tail) - 1)
    return words


# ----------------------------------------------------------------------
# Elementwise kernels
# ----------------------------------------------------------------------


def union_words(left, right):
    """Elementwise ``left | right``."""
    return _require().bitwise_or(left, right)


def intersect_words(left, right):
    """Elementwise ``left & right``."""
    return _require().bitwise_and(left, right)


def complement_words(words, n_bits: int):
    """``~words`` within an ``n_bits`` universe.

    The tail word is re-masked so bits past ``n_bits`` stay clear -- the
    classic off-by-one of fixed-width complements, pinned by the
    differential suite on non-multiple-of-64 universes.
    """
    np = _require()
    out = np.bitwise_not(words)
    tail = n_bits % WORD_BITS
    if out.shape[-1] and tail:
        out[..., -1] &= np.uint64((1 << tail) - 1)
    return out


def subset_words(left, right) -> bool:
    """True iff every bit of ``left`` is set in ``right``."""
    np = _require()
    return not bool(np.bitwise_and(left, np.bitwise_not(right)).any())


def equal_words(left, right) -> bool:
    """True iff the two word arrays encode the same mask."""
    np = _require()
    return bool(np.array_equal(left, right))


if numpy is not None and hasattr(numpy, "bitwise_count"):

    def popcount_words(words) -> int:
        """Total set bits across the array (numpy >= 2.0 ``bitwise_count``)."""
        return int(numpy.bitwise_count(words).sum())

else:  # pragma: no cover - numpy 1.x / no-numpy fallback

    def popcount_words(words) -> int:
        """Total set bits across the array (byte-LUT fold for numpy 1.x)."""
        np = _require()
        lut = np.array([bin(value).count("1") for value in range(256)], dtype="<u8")
        as_bytes = np.ascontiguousarray(words, dtype="<u8").view(np.uint8)
        return int(lut[as_bytes].sum())


# ----------------------------------------------------------------------
# Bit vector <-> word array
# ----------------------------------------------------------------------


def bits_of_words(words, n_bits: int):
    """The first ``n_bits`` bits of a word array as a ``uint8`` 0/1 vector."""
    np = _require()
    as_bytes = np.ascontiguousarray(words, dtype="<u8").view(np.uint8)
    return np.unpackbits(as_bytes, bitorder="little")[:n_bits]


def words_from_bits(bits, n_words: int):
    """A word array from a 0/1 (or bool) vector, zero-padded to the tail."""
    np = _require()
    padded = np.zeros(n_words * WORD_BITS, dtype=np.uint8)
    padded[: len(bits)] = bits
    return np.packbits(padded, bitorder="little").view("<u8")


# ----------------------------------------------------------------------
# Batched kernels
# ----------------------------------------------------------------------


def fold_contained_rows(matrix, target):
    """OR of the rows of a stacked mask matrix wholly contained in ``target``.

    The batched knowledge fold: with one row per information class, this
    is the extension of ``K_i`` applied to ``target`` -- every class is
    tested in a single ``(n_rows, n_words)`` array operation instead of
    one Python-level subset test per class.  Counted as one wordarray
    query.  (When the rows *partition* the universe,
    :class:`PartitionKernel` computes the same fold in O(n_bits) via
    ``bincount`` -- preferred on the hot paths.)
    """
    np = _require()
    count_wordarray_query()
    n_words = matrix.shape[1]
    violates = np.bitwise_and(matrix, np.bitwise_not(target)).any(axis=1)
    kept = matrix[~violates]
    if kept.shape[0] == 0:
        return np.zeros(n_words, dtype="<u8")
    return np.bitwise_or.reduce(kept, axis=0)


class PartitionKernel:
    """Batched containment queries against a fixed partition of a universe.

    Both uses of the knowledge/measure kernels are folds over a
    *partition*: an agent's information classes partition the system's
    points (Section 2), and a sigma-algebra's atoms partition the sample
    space (Section 5).  For a partition, "which blocks are wholly inside
    the target?" needs no per-block subset test: unpack the target to a
    bit vector once, count hits per block with ``bincount``, and a block
    is contained iff its hit count equals its size.  That makes the fold
    O(n_bits) with vectorized constants, independent of the block count.
    """

    __slots__ = ("_ids", "_sizes", "_n_bits", "_n_words", "_n_blocks")

    def __init__(self, block_ids, n_blocks: int, n_bits: int) -> None:
        np = _require()
        self._ids = np.ascontiguousarray(block_ids, dtype=np.int64)
        self._n_blocks = n_blocks
        self._n_bits = n_bits
        self._n_words = word_count(n_bits)
        self._sizes = np.bincount(self._ids, minlength=n_blocks)

    @classmethod
    def from_blocks(
        cls,
        blocks: Iterable[Iterable[Hashable]],
        position: Callable[[Hashable], int],
        n_bits: int,
    ) -> "PartitionKernel":
        """Build from explicit blocks and a ``member -> bit`` positioner.

        The blocks must partition ``range(n_bits)`` under ``position`` --
        true by construction for information classes over a point index
        and for algebra atoms over an outcome index.
        """
        np = _require()
        ids = np.zeros(n_bits, dtype=np.int64)
        n_blocks = 0
        for block_index, block in enumerate(blocks):
            n_blocks = block_index + 1
            for member in block:
                ids[position(member)] = block_index
        return cls(ids, n_blocks, n_bits)

    @property
    def n_blocks(self) -> int:
        return self._n_blocks

    @property
    def n_words(self) -> int:
        return self._n_words

    def hit_counts(self, target):
        """Per-block count of target bits (``bincount`` over set bits)."""
        np = _require()
        bits = bits_of_words(target, self._n_bits).view(np.bool_)
        return np.bincount(self._ids[bits], minlength=self._n_blocks)

    def contained_blocks(self, target):
        """Bool vector: block ``j`` is wholly inside the target."""
        return self.hit_counts(target) == self._sizes

    def knowledge_words(self, target):
        """The union of the blocks wholly inside ``target``, as words.

        With blocks = an agent's information classes this is exactly the
        extension mask of ``K_i`` applied to ``target`` (Section 2): a
        point satisfies ``K_i phi`` iff its whole class does.  Counted
        as one wordarray query.
        """
        count_wordarray_query()
        contained = self.contained_blocks(target)
        return words_from_bits(contained[self._ids], self._n_words)


class SpaceKernel:
    """The Section 5 interval query over one space, vectorized.

    Computes ``(inner, outer, contained)`` for an event mask: the total
    *integer* weight of atoms contained in / overlapping the event, plus
    the union of the contained atoms -- the exact triple the bitmask
    backend's per-atom Python fold produces, as one array pass.

    Exactness: weights are the space's integer atom weights over a
    common denominator.  When the denominator fits a signed 64-bit word,
    subset sums are bounded by it and an ``int64`` sum is provably
    exact; otherwise the weights are summed as Python ints over the
    selected indices.  Either way the caller receives plain ints and
    builds the Fractions.
    """

    __slots__ = (
        "_n_bits",
        "_n_words",
        "_universe",
        "_powerset",
        "_partition",
        "_weights_list",
        "_weights64",
    )

    #: Weight sums stay in int64 only while the total weight is provably
    #: below this bound (no overflow possible for any subset sum).
    INT64_SAFE_DENOMINATOR = 2**63

    def __init__(
        self,
        atoms: Sequence[Iterable[Hashable]],
        position: Callable[[Hashable], int],
        n_bits: int,
        weights: Sequence[int],
        denominator: int,
        powerset: bool,
    ) -> None:
        np = _require()
        self._n_bits = n_bits
        self._n_words = word_count(n_bits)
        self._universe = (1 << n_bits) - 1
        self._powerset = powerset
        if powerset:
            # Atom i owns exactly bit i (the index enumerates outcomes in
            # atom order), so the weight vector is already bit-aligned.
            self._partition = None
        else:
            ids = np.zeros(n_bits, dtype=np.int64)
            for atom_index, atom in enumerate(atoms):
                for outcome in atom:
                    ids[position(outcome)] = atom_index
            self._partition = PartitionKernel(ids, len(atoms), n_bits)
        self._weights_list: List[int] = list(weights)
        if denominator < self.INT64_SAFE_DENOMINATOR:
            self._weights64 = np.array(self._weights_list, dtype=np.int64)
        else:
            self._weights64 = None

    def _weight_sum(self, selected) -> int:
        """Exact total weight of the selected atoms (bool vector)."""
        np = _require()
        weights64 = self._weights64
        if weights64 is not None:
            return int(weights64[selected].sum(dtype=np.int64))
        weights = self._weights_list
        return sum(weights[index] for index in np.flatnonzero(selected).tolist())

    def interval_mask(self, mask: int) -> Tuple[int, int, int]:
        """``(inner weight, outer weight, contained mask)`` for an event.

        Matches the bitmask fold bit for bit: stray mask bits outside
        the universe contribute nothing and are never part of the
        contained mask (so ``contained == mask`` still characterises
        measurability).  Counted as one wordarray query.
        """
        np = _require()
        count_wordarray_query()
        clamped = mask & self._universe
        words = mask_to_words(clamped, self._n_words)
        bits = bits_of_words(words, self._n_bits).view(np.bool_)
        if self._partition is None:
            weight = self._weight_sum(bits)
            return weight, weight, clamped
        partition = self._partition
        hits = partition.hit_counts(words)
        contained = hits == partition._sizes
        overlapping = hits.astype(np.bool_)
        inner = self._weight_sum(contained)
        outer = self._weight_sum(overlapping)
        contained_mask = words_to_mask(
            words_from_bits(contained[partition._ids], self._n_words)
        )
        return inner, outer, contained_mask
