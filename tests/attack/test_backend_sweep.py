"""Backend plumbing through the sweep engines: rows are backend-independent.

``sweep_row_of``/``guarantee_sweep``/``parallel_guarantee_sweep`` accept
an explicit ``backend`` so a sweep can be pinned to a measure engine --
including inside worker processes, where the parent's context-manager
default would otherwise not apply.  Whatever the engine, every row must
come out as the identical exact Fractions.
"""

from fractions import Fraction

import pytest

from repro.attack.parallel import parallel_guarantee_sweep
from repro.attack.sweep import guarantee_sweep, sweep_row_of, sweep_tasks
from repro.probability import (
    get_default_backend,
    use_backend,
    wordmask,
)

MESSENGERS = [1, 2]
LOSSES = [Fraction(1, 2)]

BACKENDS = ("bitmask", "naive") + (
    ("wordarray",) if wordmask.available() else ()
)


@pytest.fixture(scope="module")
def reference_rows():
    return guarantee_sweep(MESSENGERS, LOSSES)


@pytest.mark.parametrize("backend", BACKENDS)
def test_sweep_row_of_backend_argument(backend, reference_rows):
    tasks = sweep_tasks(MESSENGERS, LOSSES)
    rows = [sweep_row_of(task, backend=backend) for task in tasks]
    assert rows == reference_rows
    # the explicit backend is scoped to the call, not leaked
    assert get_default_backend() == "bitmask"


@pytest.mark.parametrize("backend", BACKENDS)
def test_guarantee_sweep_backend_argument(backend, reference_rows):
    assert guarantee_sweep(MESSENGERS, LOSSES, backend=backend) == reference_rows
    assert get_default_backend() == "bitmask"


@pytest.mark.parametrize("backend", BACKENDS)
def test_parallel_rows_match_serial_under_backend(backend, reference_rows):
    rows = parallel_guarantee_sweep(
        MESSENGERS, LOSSES, max_workers=2, backend=backend
    )
    assert rows == reference_rows


def test_parallel_inherits_ambient_backend(reference_rows):
    # no explicit argument: the parent's context-manager default is
    # resolved in the parent and shipped to the workers
    for backend in BACKENDS:
        with use_backend(backend):
            rows = parallel_guarantee_sweep(MESSENGERS, LOSSES, max_workers=2)
        assert rows == reference_rows


def test_sweep_row_provenance_survives_backend_wrapper():
    task = sweep_tasks([1], LOSSES)[0]
    plain = sweep_row_of(task, provenance=True)
    for backend in BACKENDS:
        routed = sweep_row_of(task, provenance=True, backend=backend)
        assert routed == plain
