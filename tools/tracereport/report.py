"""Pure trace-to-summary folding (no I/O; the CLI wraps this)."""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from repro.reporting import render_table

#: Counters whose totals get their own "gfp fixpoints" table rather
#: than (only) a row in the generic counter listing.
_GFP_EVENT_KIND = "gfp"


def summarize(records: Sequence[Dict]) -> Dict:
    """Fold trace records into one JSON-ready summary dict.

    ``records`` is the output of :func:`repro.obs.read_trace`: the
    header plus counter/gauge/event/span records in stream order.
    """
    counters: Dict[str, int] = {}
    spans: Dict[str, Dict[str, float]] = {}
    gfp_events: List[Dict] = []
    attempts_by_task: Dict[int, int] = {}
    outcome_counts: Dict[str, int] = {}
    last_cache_stats: Optional[Dict] = None
    audit_leaves = 0
    last_chain: Optional[str] = None
    events = 0

    for record in records:
        kind = record.get("type")
        if kind == "counter":
            name = record["name"]
            counters[name] = counters.get(name, 0) + int(record.get("value", 1))
        elif kind == "span-end":
            name = record["name"]
            seconds = float(record.get("seconds", 0.0))
            stats = spans.get(name)
            if stats is None:
                spans[name] = {
                    "count": 1,
                    "total_seconds": seconds,
                    "max_seconds": seconds,
                }
            else:
                stats["count"] += 1
                stats["total_seconds"] += seconds
                stats["max_seconds"] = max(stats["max_seconds"], seconds)
        elif kind == "event":
            events += 1
            fields = record.get("fields", {})
            event_kind = record.get("kind")
            if event_kind == "cache_stats":
                last_cache_stats = dict(fields)
            elif event_kind == _GFP_EVENT_KIND:
                gfp_events.append(dict(fields))
            elif event_kind == "task_attempt":
                index = fields.get("index")
                if index is not None:
                    attempts_by_task[index] = attempts_by_task.get(index, 0) + 1
                outcome = fields.get("outcome", "?")
                outcome_counts[outcome] = outcome_counts.get(outcome, 0) + 1
            elif event_kind == "audit_leaf":
                audit_leaves += 1
                last_chain = fields.get("chain")

    histogram: Dict[int, int] = {}
    for count in attempts_by_task.values():
        histogram[count] = histogram.get(count, 0) + 1

    summary: Dict = {
        "records": len(records),
        "events": events,
        "counters": dict(sorted(counters.items())),
        "spans": {
            name: dict(stats)
            for name, stats in sorted(
                spans.items(), key=lambda item: -item[1]["total_seconds"]
            )
        },
        "gfp": {
            "fixpoints": len(gfp_events),
            "total_iterations": sum(e.get("iterations", 0) for e in gfp_events),
            "max_iterations": max(
                (e.get("iterations", 0) for e in gfp_events), default=0
            ),
        },
        "retries": {
            "tasks": len(attempts_by_task),
            "attempts_per_task": {
                str(attempts): tasks for attempts, tasks in sorted(histogram.items())
            },
            "outcomes": dict(sorted(outcome_counts.items())),
        },
    }
    if last_cache_stats is not None:
        hits = int(last_cache_stats.get("cache_hits", 0))
        misses = int(last_cache_stats.get("cache_misses", 0))
        summary["cache"] = dict(last_cache_stats)
        summary["cache"]["hit_rate"] = (
            Fraction(hits, hits + misses) if hits + misses else None
        )
    if audit_leaves:
        summary["audit_leaves"] = {"count": audit_leaves, "chain": last_chain}
    return summary


def summarize_audit(bundle) -> Dict:
    """Fold a ``repro-audit/1`` :class:`~repro.obs.audit.AuditBundle`
    into the report's audit section.

    Alongside the chain totals, the section quantifies what hash-consing
    bought: ``tree_nodes`` is what ``repro-explain/1`` would have stored
    (every subtree occurrence written in full, summed over all leaves),
    ``nodes`` is what the bundle actually streamed, and ``dedup_ratio``
    is their exact quotient.
    """
    protocols: Dict[str, int] = {}
    for leaf in bundle.leaves:
        name = str(leaf.get("task", {}).get("protocol"))
        protocols[name] = protocols.get(name, 0) + 1
    # Tree size per subtree by memoised descent: O(table), even though
    # the unfolded trees can be exponentially larger than the DAG.
    tree_sizes: Dict[str, int] = {}

    def tree_size(ref: str) -> int:
        known = tree_sizes.get(ref)
        if known is not None:
            return known
        payload = bundle.nodes.get(ref)
        size = (
            1 + sum(tree_size(child) for child in payload.get("children", []))
            if payload is not None
            else 0
        )
        tree_sizes[ref] = size
        return size

    tree_nodes = sum(
        tree_size(leaf["root_ref"])
        for leaf in bundle.leaves
        if leaf.get("root_ref") is not None
    )
    return {
        "explain_schema": bundle.header.get("explain_schema"),
        "leaves": len(bundle.leaves),
        "distinct_indexes": len(bundle.leaf_indexes()),
        "nodes": len(bundle.nodes),
        "tree_nodes": tree_nodes,
        "dedup_ratio": (
            Fraction(tree_nodes, len(bundle.nodes)) if bundle.nodes else None
        ),
        "root": bundle.root,
        "protocols": dict(sorted(protocols.items())),
    }


def render_audit(audit: Dict) -> str:
    """Render a :func:`summarize_audit` result as plain-text tables."""
    sections: List[str] = [
        render_table(
            "Audit bundle",
            ["leaves", "distinct indexes", "nodes", "tree nodes", "dedup ratio"],
            [
                [
                    audit["leaves"],
                    audit["distinct_indexes"],
                    audit["nodes"],
                    audit["tree_nodes"],
                    audit["dedup_ratio"] if audit["dedup_ratio"] is not None else "n/a",
                ]
            ],
        )
    ]
    if audit["protocols"]:
        sections.append(
            render_table(
                "Audit leaves by protocol",
                ["protocol", "leaves"],
                list(audit["protocols"].items()),
            )
        )
    sections.append(f"chain root: {audit['root']}")
    return "\n\n".join(sections)


def summarize_metrics(snapshot: Dict) -> Dict:
    """Fold a ``repro-metrics/1`` snapshot into the report's metrics section.

    The snapshot is one record from :func:`repro.obs.read_snapshot` --
    typically taken after a pool sweep, so its counters carry the
    worker-merged totals (``worker.<pid>.*``) the trace alone would lack
    on an uninstrumented run.  Returned shape::

        {"label": ..., "counters": {...}, "worker_counters": {...},
         "kernel_totals": {...}, "cache": {...}}
    """
    counters = {
        str(name): int(value)
        for name, value in snapshot.get("counters", {}).items()
    }
    worker_counters = {
        name: value for name, value in counters.items() if name.startswith("worker.")
    }
    cache = dict(snapshot.get("cache", {}))
    return {
        "label": snapshot.get("label", ""),
        "counters": dict(sorted(counters.items())),
        "worker_counters": dict(sorted(worker_counters.items())),
        "kernel_totals": dict(snapshot.get("kernel_totals", {})),
        "cache": cache,
    }


def render_metrics(metrics: Dict) -> str:
    """Render a :func:`summarize_metrics` result as plain-text tables."""
    sections: List[str] = []
    label = metrics.get("label") or "(unlabelled)"
    kernel = metrics.get("kernel_totals", {})
    if kernel:
        sections.append(
            render_table(
                f"Metrics snapshot {label}: kernel totals",
                ["counter", "total"],
                sorted(kernel.items()),
            )
        )
    worker_counters = metrics.get("worker_counters", {})
    if worker_counters:
        sections.append(
            render_table(
                "Worker-merged counters",
                ["counter", "total"],
                list(worker_counters.items()),
            )
        )
    cache = metrics.get("cache", {})
    if cache:
        rate = cache.get("hit_rate")
        sections.append(
            render_table(
                "Snapshot cache",
                ["hits", "misses", "evictions", "hit rate"],
                [
                    [
                        cache.get("hits", 0),
                        cache.get("misses", 0),
                        cache.get("evictions", 0),
                        rate if rate is not None else "n/a",
                    ]
                ],
            )
        )
    if not sections:
        return "(metrics snapshot carries no kernel, worker, or cache data)"
    return "\n\n".join(sections)


def render_report(summary: Dict) -> str:
    """Render a :func:`summarize` result as plain-text tables."""
    sections: List[str] = []

    span_rows = [
        [
            name,
            stats["count"],
            f"{stats['total_seconds']:.6f}",
            f"{stats['total_seconds'] / stats['count']:.6f}",
            f"{stats['max_seconds']:.6f}",
        ]
        for name, stats in summary["spans"].items()
    ]
    if span_rows:
        sections.append(
            render_table(
                "Top spans (by total seconds)",
                ["span", "count", "total s", "mean s", "max s"],
                span_rows,
            )
        )

    counter_rows = [[name, value] for name, value in summary["counters"].items()]
    if counter_rows:
        sections.append(render_table("Counters", ["counter", "total"], counter_rows))

    cache = summary.get("cache")
    if cache is not None:
        rate = cache.get("hit_rate")
        sections.append(
            render_table(
                "Measure-kernel cache",
                ["hits", "misses", "evictions", "naive queries", "hit rate"],
                [
                    [
                        cache.get("cache_hits", 0),
                        cache.get("cache_misses", 0),
                        cache.get("cache_evictions", 0),
                        cache.get("naive_queries", 0),
                        rate if rate is not None else "n/a",
                    ]
                ],
            )
        )

    gfp = summary["gfp"]
    if gfp["fixpoints"]:
        sections.append(
            render_table(
                "gfp fixpoints",
                ["fixpoints", "total iterations", "max iterations"],
                [[gfp["fixpoints"], gfp["total_iterations"], gfp["max_iterations"]]],
            )
        )

    retries = summary["retries"]
    if retries["tasks"]:
        sections.append(
            render_table(
                "Retry histogram (attempts per task)",
                ["attempts", "tasks"],
                [
                    [attempts, tasks]
                    for attempts, tasks in retries["attempts_per_task"].items()
                ],
            )
        )
        sections.append(
            render_table(
                "Attempt outcomes",
                ["outcome", "attempts"],
                list(retries["outcomes"].items()),
            )
        )

    audit_leaves = summary.get("audit_leaves")
    if audit_leaves:
        sections.append(
            render_table(
                "Audit leaves (trace events)",
                ["leaves", "last chain"],
                [[audit_leaves["count"], audit_leaves["chain"]]],
            )
        )

    if not sections:
        return "(trace contains no spans, counters, or recognised events)"
    return "\n\n".join(sections)
