"""E13 -- Appendix B.1: Freund's puzzle of the two aces.

Paper claims: Pr(both aces) moves 1/6 -> 1/5 -> 1/3 under the ask-then-ask
protocol; stays at 1/5 when p1 reveals a random held suit; and (footnote
20) drops to 0 on "spades" when p1 always says hearts holding both.
P_post, computed over the protocol's computation tree, gets every case.
"""

from fractions import Fraction

from repro.examples_lib import (
    ask_then_ask,
    posterior_after,
    reveal_hearts_bias,
    reveal_random,
)
from repro.reporting import print_table


def run_experiment():
    protocol1 = ask_then_ask()
    protocol2 = reveal_random()
    protocol3 = reveal_hearts_bias()
    return {
        "prior": posterior_after(protocol1, ("dealt",), protocol1.both_aces),
        "p1_ace": posterior_after(protocol1, ("yes-ace",), protocol1.both_aces),
        "p1_spades": posterior_after(protocol1, ("yes-spades",), protocol1.both_aces),
        "p2_spades": posterior_after(protocol2, ("say-spades",), protocol2.both_aces),
        "p3_spades": posterior_after(protocol3, ("say-spades",), protocol3.both_aces),
    }


def test_e13_two_aces(benchmark):
    results = benchmark(run_experiment)
    print_table(
        "E13  two aces: p2's posterior for 'both aces'",
        ["after hearing", "protocol", "paper", "measured"],
        [
            ("(deal only)", "any", Fraction(1, 6), results["prior"]),
            ("'I have an ace'", "any", Fraction(1, 5), results["p1_ace"]),
            ("'I have the ace of spades'", "ask-then-ask", Fraction(1, 3), results["p1_spades"]),
            ("'a held suit: spades' (random)", "reveal-random", Fraction(1, 5), results["p2_spades"]),
            ("'a held suit: spades' (hearts-biased)", "footnote 20", Fraction(0), results["p3_spades"]),
        ],
    )
    assert results["prior"] == Fraction(1, 6)
    assert results["p1_ace"] == Fraction(1, 5)
    assert results["p1_spades"] == Fraction(1, 3)
    assert results["p2_spades"] == Fraction(1, 5)
    assert results["p3_spades"] == Fraction(0)
