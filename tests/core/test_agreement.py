"""Aumann's agreement theorem on system time slices (Appendix B.3)."""

from fractions import Fraction

import pytest

from repro.core import (
    Fact,
    aumann_agreement,
    common_knowledge_of_posteriors,
    knowledge_partition,
    meet_partition,
)
from repro.errors import ModelError
from repro.examples_lib import three_agent_coin_system
from repro.testing import parity_fact, random_psys


@pytest.fixture(scope="module")
def coin():
    return three_agent_coin_system()


class TestPartitions:
    def test_knowledge_partition_cells(self, coin):
        slice_points = coin.psys.system.points_at_time(1)
        cells0 = knowledge_partition(coin.psys, 0, slice_points)
        cells2 = knowledge_partition(coin.psys, 2, slice_points)
        assert len(cells0) == 1  # p1 cannot distinguish the two outcomes
        assert len(cells2) == 2  # p3 saw the coin

    def test_partition_requires_closed_slice(self, coin):
        # half a slice is not closed under p1's indistinguishability
        slice_points = coin.psys.system.points_at_time(1)[:1]
        with pytest.raises(ModelError):
            knowledge_partition(coin.psys, 0, slice_points)

    def test_meet_of_fine_and_coarse(self, coin):
        slice_points = coin.psys.system.points_at_time(1)
        fine = knowledge_partition(coin.psys, 2, slice_points)
        coarse = knowledge_partition(coin.psys, 0, slice_points)
        meet = meet_partition([fine, coarse])
        assert len(meet) == 1  # the coarse observer glues everything

    def test_meet_of_identical_partitions(self, coin):
        slice_points = coin.psys.system.points_at_time(1)
        fine = knowledge_partition(coin.psys, 2, slice_points)
        meet = meet_partition([fine, fine])
        assert sorted(map(len, meet)) == sorted(map(len, fine))


class TestAgreement:
    def test_holds_on_coin_system(self, coin):
        tree = coin.psys.trees[0]
        report = aumann_agreement(coin.psys, tree, 1, (0, 1, 2), coin.heads)
        assert report.holds
        assert report.meet_cells == 1

    def test_holds_on_random_synchronous_systems(self):
        for seed in range(5):
            psys = random_psys(seed=seed, depth=2, observability=("clock", "full"))
            tree = psys.trees[0]
            report = aumann_agreement(psys, tree, 2, (0, 1), parity_fact())
            assert report.holds, report.disagreements

    def test_holds_with_partial_observers(self):
        psys = random_psys(seed=13, depth=2, observability=("full", "full"))
        tree = psys.trees[0]
        report = aumann_agreement(psys, tree, 1, (0, 1), parity_fact())
        assert report.holds

    def test_requires_synchrony(self):
        psys = random_psys(seed=13, depth=2, observability=("blind", "clock"))
        from repro.errors import SynchronyError

        with pytest.raises(SynchronyError):
            aumann_agreement(psys, psys.trees[0], 1, (0, 1), parity_fact())

    def test_empty_slice_rejected(self, coin):
        with pytest.raises(ModelError):
            aumann_agreement(coin.psys, coin.psys.trees[0], 9, (0, 2), coin.heads)


class TestCommonKnowledgeOfPosteriors:
    def test_ignorant_pair_shares_posterior(self, coin):
        # p1 and p2 both assign 1/2 everywhere on the slice: their (equal)
        # posteriors are common knowledge.
        tree = coin.psys.trees[0]
        point = coin.psys.system.points_at_time(1)[0]
        assert common_knowledge_of_posteriors(
            coin.psys, tree, 1, (0, 1), coin.heads, point
        )

    def test_informed_agent_breaks_common_knowledge(self, coin):
        # p3's posterior (0 or 1) is not constant on the meet cell, so the
        # posterior profile is NOT common knowledge -- and indeed p1 and p3
        # "disagree" (1/2 vs 1) without contradicting Aumann.
        tree = coin.psys.trees[0]
        point = coin.psys.system.points_at_time(1)[0]
        assert not common_knowledge_of_posteriors(
            coin.psys, tree, 1, (0, 2), coin.heads, point
        )
