"""Unit tests for the bitmask event representation and backend switch."""

import pytest

from repro.obs import MetricsRecorder, use_recorder
from repro.probability import (
    BACKENDS,
    IntervalCache,
    OutcomeIndex,
    get_default_backend,
    kernel_totals,
    reset_kernel_totals,
    set_default_backend,
    use_backend,
)


class TestOutcomeIndex:
    def test_positions_follow_first_seen_order(self):
        index = OutcomeIndex(["c", "a", "b", "a"])
        assert index.members == ("c", "a", "b")
        assert [index.position(member) for member in "cab"] == [0, 1, 2]
        assert len(index) == 3
        assert list(index) == ["c", "a", "b"]

    def test_masks_round_trip(self):
        index = OutcomeIndex(range(5))
        mask = index.mask_of([0, 3, 4])
        assert index.members_of(mask) == frozenset({0, 3, 4})
        assert index.full_mask == 0b11111
        assert index.singleton(3) == 0b01000

    def test_mask_of_known_drops_foreign_members(self):
        index = OutcomeIndex("ab")
        assert index.mask_of_known("abz") == index.full_mask
        assert index.strict_mask("abz") is None
        assert index.strict_mask("ab") == index.full_mask
        with pytest.raises(KeyError):
            index.mask_of("abz")

    def test_contains(self):
        index = OutcomeIndex("ab")
        assert "a" in index
        assert "z" not in index

    def test_iter_members_of_is_position_ordered(self):
        index = OutcomeIndex("abcd")
        assert list(index.iter_members_of(0b1010)) == ["b", "d"]


class TestIntervalCache:
    def test_lru_eviction(self):
        cache = IntervalCache(maxsize=2)
        cache.put(1, "one")
        cache.put(2, "two")
        assert cache.get(1) == "one"  # refreshes 1; 2 is now least recent
        cache.put(3, "three")
        assert cache.get(2) is None
        assert cache.get(1) == "one"
        assert cache.get(3) == "three"
        assert len(cache) == 2

    def test_hit_miss_counters(self):
        cache = IntervalCache()
        assert cache.get(7) is None
        cache.put(7, "entry")
        assert cache.get(7) == "entry"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            IntervalCache(maxsize=0)

    def test_eviction_counter(self):
        cache = IntervalCache(maxsize=2)
        cache.put(1, "one")
        cache.put(2, "two")
        assert cache.evictions == 0
        cache.put(3, "three")
        cache.put(4, "four")
        assert cache.evictions == 2
        cache.put(4, "four again")  # refresh, not insert: no eviction
        assert cache.evictions == 2

    def test_stats_snapshot(self):
        cache = IntervalCache(maxsize=2)
        cache.get(1)
        cache.put(1, "one")
        cache.get(1)
        cache.put(2, "two")
        cache.put(3, "three")
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "evictions": 1,
            "size": 2,
            "maxsize": 2,
        }

    def test_clear_drops_entries_but_keeps_counters(self):
        cache = IntervalCache()
        cache.put(1, "one")
        cache.get(1)
        cache.get(9)
        cache.clear()
        assert len(cache) == 0
        assert cache.get(1) is None  # really gone
        stats = cache.stats()
        assert stats["size"] == 0
        assert stats["hits"] == 1
        assert stats["misses"] == 2  # pre-clear miss + the probe above

    def test_cache_traffic_feeds_process_totals(self):
        reset_kernel_totals()
        cache = IntervalCache(maxsize=1)
        cache.get(1)
        cache.put(1, "one")
        cache.get(1)
        cache.put(2, "two")  # evicts 1
        totals = kernel_totals()
        assert totals["cache_hits"] == 1
        assert totals["cache_misses"] == 1
        assert totals["cache_evictions"] == 1

    def test_reset_kernel_totals_returns_previous(self):
        reset_kernel_totals()
        cache = IntervalCache()
        cache.get(1)
        previous = reset_kernel_totals()
        assert previous["cache_misses"] == 1
        assert kernel_totals()["cache_misses"] == 0


class TestBackendSwitch:
    def test_default_is_bitmask(self):
        assert get_default_backend() == "bitmask"
        assert set(BACKENDS) == {"bitmask", "wordarray", "naive"}

    def test_use_backend_restores_on_exit(self):
        with use_backend("naive"):
            assert get_default_backend() == "naive"
        assert get_default_backend() == "bitmask"

    def test_use_backend_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_backend("naive"):
                raise RuntimeError("boom")
        assert get_default_backend() == "bitmask"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            set_default_backend("gpu")

    def test_switch_emits_event_and_counts(self):
        reset_kernel_totals()
        metrics = MetricsRecorder()
        with use_recorder(metrics):
            with use_backend("naive"):
                pass
        # one switch in, one back out
        assert metrics.counters["event:backend_switch"] == 2
        assert kernel_totals()["backend_switches"] == 2

    def test_noop_switch_is_not_an_event(self):
        reset_kernel_totals()
        metrics = MetricsRecorder()
        with use_recorder(metrics):
            set_default_backend("bitmask")  # already the default
        assert "event:backend_switch" not in metrics.counters
        assert kernel_totals()["backend_switches"] == 0

    def test_naive_backend_counts_kernel_dispatches(self):
        from fractions import Fraction

        from repro.probability import fair_coin, space_of

        reset_kernel_totals()
        with use_backend("naive"):
            space = space_of(fair_coin())
            assert space.measure(frozenset({"heads"})) == Fraction(1, 2)
        assert kernel_totals()["naive_queries"] >= 1

    def test_bitmask_backend_makes_no_naive_queries(self):
        from fractions import Fraction

        from repro.probability import fair_coin, space_of

        reset_kernel_totals()
        space = space_of(fair_coin())
        assert space.measure(frozenset({"heads"})) == Fraction(1, 2)
        assert kernel_totals()["naive_queries"] == 0
