"""Primality testing: the algorithms and the Section 3 systems reading."""

from fractions import Fraction

import pytest

from repro.examples_lib import (
    is_prime,
    jacobi_symbol,
    miller_rabin_witness,
    per_input_correctness,
    primality_probability_is_degenerate,
    primality_system,
    probable_prime,
    solovay_strassen_witness,
    witness_density,
)

PRIMES = [3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67]
ODD_COMPOSITES = [9, 15, 21, 25, 27, 33, 35, 39, 45, 49, 51, 55, 57, 63, 65]


class TestGroundTruth:
    def test_is_prime_small(self):
        assert [n for n in range(2, 70) if is_prime(n)] == [2] + PRIMES

    def test_is_prime_edge_cases(self):
        assert not is_prime(0) and not is_prime(1) and not is_prime(-7)
        assert is_prime(2)


class TestMillerRabin:
    @pytest.mark.parametrize("n", PRIMES)
    def test_no_witness_for_primes(self, n):
        assert all(not miller_rabin_witness(n, a) for a in range(1, n))

    @pytest.mark.parametrize("n", ODD_COMPOSITES)
    def test_witness_density_at_least_three_quarters(self, n):
        assert witness_density(n, miller_rabin_witness) >= Fraction(3, 4)

    def test_even_composites_always_witnessed(self):
        assert miller_rabin_witness(10, 3)

    def test_probable_prime_with_good_bases(self):
        assert probable_prime(97, [2, 3, 5])
        assert not probable_prime(91, [2, 3, 5])

    def test_carmichael_number_still_caught(self):
        # 561 = 3 * 11 * 17 fools the Fermat test but not Miller-Rabin
        assert witness_density(561, miller_rabin_witness) >= Fraction(3, 4)


class TestSolovayStrassen:
    @pytest.mark.parametrize("n", PRIMES)
    def test_no_witness_for_primes(self, n):
        assert all(not solovay_strassen_witness(n, a) for a in range(1, n))

    @pytest.mark.parametrize("n", ODD_COMPOSITES)
    def test_witness_density_at_least_half(self, n):
        assert witness_density(n, solovay_strassen_witness) >= Fraction(1, 2)

    def test_jacobi_basics(self):
        assert jacobi_symbol(1, 3) == 1
        assert jacobi_symbol(2, 3) == -1
        assert jacobi_symbol(3, 9) == 0
        assert jacobi_symbol(1001, 9907) == -1  # known table value

    def test_jacobi_multiplicativity(self):
        n = 15
        for a in range(1, 15):
            for b in range(1, 15):
                assert jacobi_symbol(a * b, n) == jacobi_symbol(a, n) * jacobi_symbol(
                    b, n
                )

    def test_jacobi_requires_odd(self):
        with pytest.raises(ValueError):
            jacobi_symbol(3, 10)


class TestSystemsReading:
    @pytest.fixture(scope="class")
    def example(self):
        return primality_system([13, 15, 21], rounds=1)

    def test_one_tree_per_input(self, example):
        assert len(example.psys.trees) == 3

    def test_per_input_correctness(self, example):
        correctness = per_input_correctness(example)
        assert correctness[13] == 1  # primes are never misjudged
        assert correctness[15] == witness_density(15, miller_rabin_witness)
        assert correctness[21] == witness_density(21, miller_rabin_witness)

    def test_two_rounds_square_the_error(self):
        one = primality_system([9], rounds=1)
        two = primality_system([9], rounds=2)
        error_one = 1 - per_input_correctness(one)[9]
        error_two = 1 - per_input_correctness(two)[9]
        assert error_two == error_one**2

    def test_error_bound(self, example):
        for n, probability in per_input_correctness(example).items():
            assert probability >= Fraction(3, 4)

    def test_prime_probability_is_degenerate(self, example):
        # "n is prime with high probability" makes no sense: 0 or 1 per tree
        assert primality_probability_is_degenerate(example)

    def test_solovay_strassen_system(self):
        example = primality_system([15], rounds=1, witness=solovay_strassen_witness)
        correctness = per_input_correctness(example)
        assert correctness[15] == witness_density(15, solovay_strassen_witness)

    def test_witness_density_input_validation(self):
        with pytest.raises(ValueError):
            witness_density(2, miller_rabin_witness)
