"""Word-array backend workloads: >=100k-point systems (ISSUE 7).

Two workloads sized past the practical range of per-atom bigint folds,
run identically under the ``bitmask`` and ``wordarray`` backends so
``collect.py`` can cross-check results and report honest speedups:

* ``block_space`` -- a *non-powerset* algebra with 12_800 atoms of 8
  outcomes each (102_400 outcomes total) queried through
  ``measure_interval_mask``.  The bitmask engine folds every atom mask
  per query; the word-array :class:`~repro.probability.wordmask.SpaceKernel`
  answers from one ``unpackbits``/``bincount`` pass.
* ``flat_gfp`` -- a flat computation tree (root plus 51_200 uniform
  leaves, horizon 2 = 102_400 points) whose two agents carry deliberately
  misaligned block partitions, so ``CommonKnows`` needs ~64 greatest-fixed-
  point iterations of knowledge folds -- the hot path the word-array
  :class:`~repro.probability.wordmask.PartitionKernel` batches.

Both builders are deterministic; every probability stays an exact
Fraction under either backend.
"""

from fractions import Fraction

from repro.core import ProbabilityAssignment
from repro.core.facts import Fact
from repro.core.model import GlobalState
from repro.core.standard import PostAssignment
from repro.logic import CommonKnows, Model, Prop
from repro.probability import FiniteProbabilitySpace
from repro.trees import ComputationTree, single_tree_system

#: Full-size parameters (102_400 outcomes / points) and the CI smoke
#: shrink (3_200 points) -- same shapes, two orders of magnitude apart.
FULL = {"n_atoms": 12_800, "block": 8, "n_leaves": 51_200, "chain_block": 64, "cutoff": 4_096}
SMOKE = {"n_atoms": 400, "block": 8, "n_leaves": 1_600, "chain_block": 16, "cutoff": 256}


# ----------------------------------------------------------------------
# Workload 1: non-powerset measure queries
# ----------------------------------------------------------------------


def build_block_space(n_atoms: int, block: int) -> FiniteProbabilitySpace:
    """``n_atoms`` atoms of ``block`` consecutive outcomes, varied weights.

    Must be constructed under the backend being benchmarked (backend
    choice is latched at construction time).
    """
    atoms = tuple(
        frozenset(range(i * block, (i + 1) * block)) for i in range(n_atoms)
    )
    weights = [(i % 97) + 1 for i in range(n_atoms)]
    total = sum(weights)
    probabilities = {
        atom: Fraction(weight, total) for atom, weight in zip(atoms, weights)
    }
    # A one-entry interval cache: the benchmark's distinct query masks
    # thrash the LRU, so repeated passes re-run the measure kernel
    # instead of replaying cached intervals.
    return FiniteProbabilitySpace(atoms, probabilities, interval_cache_maxsize=1)


def measure_query_masks(space: FiniteProbabilitySpace, n_queries: int):
    """Deterministic query masks: half measurable, half strict covers.

    Built through ``event_mask`` so they are valid under whatever outcome
    order the space's index chose.  Odd queries take whole atoms (exactly
    measurable); even queries straddle atom boundaries, exercising the
    inner/outer split.
    """
    n_atoms = len(space.atoms)
    n_outcomes = len(space.outcomes)
    block = n_outcomes // n_atoms
    masks = []
    for q in range(n_queries):
        stride = q + 2
        if q % 2:
            event = [
                outcome
                for i in range(0, n_atoms, stride)
                for outcome in range(i * block, (i + 1) * block)
            ]
        else:
            event = list(range(q, n_outcomes, stride))
        masks.append(space.event_mask(event))
    return masks


def measure_workload(space: FiniteProbabilitySpace, masks):
    """Interval-measure every mask; the intervals are the cross-check value."""
    return [space.measure_interval_mask(mask) for mask in masks]


# ----------------------------------------------------------------------
# Workload 2: flat-tree common-knowledge fixpoint
# ----------------------------------------------------------------------


def build_flat_system(n_leaves: int, chain_block: int, cutoff: int):
    """Root plus ``n_leaves`` uniform leaves; two-agent block partitions.

    Agent 0 partitions leaves into aligned blocks ``r // chain_block``.
    Agent 1 uses half-offset blocks below ``cutoff`` and aligned blocks
    above it, so a single violating leaf starts a knowledge knockout
    that cascades one half-block per gfp iteration until the aligned
    region stops it: ``cutoff // (chain_block // 2)`` iterations.
    """
    half = chain_block // 2
    root = GlobalState("root", ("r", "r"))
    leaves = []
    children = {root: leaves}
    edges = {}
    probability = Fraction(1, n_leaves)
    for r in range(n_leaves):
        if r < cutoff:
            local1 = ("m", (r + half) // chain_block)
        else:
            local1 = ("a", r // chain_block)
        leaf = GlobalState(("leaf", r), (r // chain_block, local1))
        leaves.append(leaf)
        edges[(root, leaf)] = probability
    tree = ComputationTree("A", root, children, edges, validate=False)
    return single_tree_system(tree)


def flat_gfp_workload(psys, assignment):
    """Fresh model, then ``C_{0,1} phi`` where phi fails at leaf 0 only.

    Returns the common-knowledge extension mask (the cross-check value)
    and the surviving point count.
    """
    violating = GlobalState(("leaf", 0), (0, ("m", 0)))

    def predicate(point):
        return point.global_state != violating

    model = Model(assignment, {"ok": Fact(predicate, name="ok")})
    mask = model.extension_mask(CommonKnows((0, 1), Prop("ok")))
    return mask, mask.bit_count()


def flat_gfp_assignment(psys) -> ProbabilityAssignment:
    """The post assignment (built once, shared by both backends)."""
    return ProbabilityAssignment(PostAssignment(psys))
