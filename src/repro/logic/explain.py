"""Derivation builders: the Section 5 evidence behind every verdict.

``Model.holds`` answers *whether* ``(P, c) |= phi``; this module answers
*why*.  :func:`explain` re-derives a formula's truth value at a point and
records each semantic clause it applies as a
:class:`~repro.obs.provenance.DerivationNode` citing the paper
definition it instantiates:

* ``Pr_i(phi) >= alpha`` carries the sample space ``S(i, c)``, every
  cell of its sigma-algebra with its exact ``"p/q"`` measure, and the
  measurable **witness event** realising the inner bound -- the
  Section 5 inner-measure semantics made inspectable.
* ``K_i phi`` (hence ``K_i^alpha phi = K_i(Pr_i(phi) >= alpha)``,
  Section 5) carries a concrete **counterexample point** whenever it
  fails -- the point Theorem 7's refuting strategy targets.
* ``C_G`` / ``C_G^alpha`` carry the per-iteration snapshots of the
  Section 8 greatest-fixed-point computation, captured through a
  :class:`~repro.obs.provenance.ProvenanceRecorder` layered over
  whatever recorder is already installed.

The explain layer is strictly *re-derivation*: every verdict it reports
comes from the same memoised ``Model`` kernels the checker uses, so a
derivation can never disagree with :meth:`Model.holds`, and
:func:`audit_derivation` re-checks the recorded evidence (cell sums,
witnesses, counterexamples) independently.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.facts import Fact
from ..core.model import Point, System
from ..errors import LogicError
from ..obs.provenance import (
    Derivation,
    DerivationNode,
    ProvenanceRecorder,
)
from ..obs.recorder import MultiRecorder, get_recorder, use_recorder
from ..probability.fractionutil import ZERO
from ..reporting import fraction_from_json
from .semantics import Model
from .syntax import (
    And,
    CommonKnows,
    CommonKnowsProb,
    EveryoneKnows,
    EveryoneKnowsProb,
    FalseFormula,
    Formula,
    Iff,
    Implies,
    Knows,
    Next,
    Not,
    Or,
    PrAtLeast,
    PrAtMost,
    Prop,
    TrueFormula,
    Until,
    knows_prob_at_least,
)

__all__ = ["audit_derivation", "explain", "resolve_point_ref"]


class _Explainer:
    """Per-call context: the model, its point index, and run labels."""

    def __init__(self, model: Model) -> None:
        self.model = model
        self.system: System = model.system
        self.index = model.psys.point_index
        self._run_number = {run: i for i, run in enumerate(self.system.runs)}

    # -- encoding --------------------------------------------------------

    def point_ref(self, point: Point) -> Dict:
        """``{"bit", "time", "label"}`` over the system's shared point index."""
        return {
            "bit": self.index.position(point),
            "time": point.time,
            "label": f"(r{self._run_number[point.run]}, {point.time})",
        }

    def mask_of(self, points) -> int:
        return self.index.mask_of_known(points)

    def ordered(self, points) -> List[Point]:
        """Points in index order -- the deterministic order every witness
        and counterexample search uses."""
        return sorted(points, key=self.index.position)

    # -- dispatch --------------------------------------------------------

    def node(self, formula: Formula, point: Point) -> DerivationNode:
        if isinstance(formula, Prop):
            return self._prop(formula, point)
        if isinstance(formula, TrueFormula):
            return self._leaf(formula, point, "true", True,
                              "Section 5 (the propositional constant true)")
        if isinstance(formula, FalseFormula):
            return self._leaf(formula, point, "false", False,
                              "Section 5 (the propositional constant false)")
        if isinstance(formula, Not):
            return self._connective(formula, point, "not", [formula.sub])
        if isinstance(formula, (And, Or, Implies, Iff)):
            rule = type(formula).__name__.lower()
            return self._connective(formula, point, rule,
                                    [formula.left, formula.right])
        if isinstance(formula, Knows):
            return self._knows(formula, point)
        if isinstance(formula, PrAtLeast):
            return self._pr_at_least(formula, point)
        if isinstance(formula, PrAtMost):
            return self._pr_at_most(formula, point)
        if isinstance(formula, Next):
            return self._next(formula, point)
        if isinstance(formula, Until):
            return self._until(formula, point)
        if isinstance(formula, EveryoneKnows):
            return self._everyone(formula, point)
        if isinstance(formula, EveryoneKnowsProb):
            return self._everyone_prob(formula, point)
        if isinstance(formula, (CommonKnows, CommonKnowsProb)):
            return self._common(formula, point)
        raise LogicError(f"unknown formula constructor {type(formula).__name__}")

    # -- leaves and connectives -----------------------------------------

    def _leaf(self, formula, point, rule, holds, definition, detail=None):
        return DerivationNode(
            rule=rule,
            formula=str(formula),
            point=self.point_ref(point),
            holds=holds,
            definition=definition,
            detail=detail or {},
        )

    def _prop(self, formula: Prop, point: Point) -> DerivationNode:
        holds = self.model.holds(formula, point)
        return self._leaf(
            formula, point, "prop", holds,
            "Section 5: primitive propositions are interpreted by the "
            "model's valuation pi",
            {
                "proposition": formula.name,
                "extension_mask": self.model.extension_mask(formula),
            },
        )

    def _connective(self, formula, point, rule, subs) -> DerivationNode:
        return DerivationNode(
            rule=rule,
            formula=str(formula),
            point=self.point_ref(point),
            holds=self.model.holds(formula, point),
            definition="Section 5 (boolean connectives, pointwise)",
            children=tuple(self.node(sub, point) for sub in subs),
        )

    # -- knowledge -------------------------------------------------------

    def _knows(self, formula: Knows, point: Point) -> DerivationNode:
        agent, sub = formula.agent, formula.sub
        holds = self.model.holds(formula, point)
        candidates = self.ordered(self.system.knowledge_set(agent, point))
        detail: Dict = {
            "agent": agent,
            "class_size": len(candidates),
            "class_mask": self.mask_of(candidates),
        }
        if holds:
            children = (self.node(sub, point),)
        else:
            # Deterministic counterexample: the first candidate in point-
            # index order where the subformula fails.  Theorem 7's
            # refuting strategy targets exactly such a point.
            counterexample = next(
                candidate for candidate in candidates
                if not self.model.holds(sub, candidate)
            )
            detail["counterexample"] = self.point_ref(counterexample)
            children = (self.node(sub, counterexample),)
        return DerivationNode(
            rule="knows",
            formula=str(formula),
            point=self.point_ref(point),
            holds=holds,
            definition="Section 4: (P, c) |= K_i phi iff phi holds at "
                       "every point of K_i(c)",
            detail=detail,
            children=children,
        )

    # -- probability -----------------------------------------------------

    def _probability_evidence(self, agent: int, sub: Formula, point: Point) -> Dict:
        """The shared Section 5 evidence: sample space, cells, interval."""
        assignment = self.model.assignment
        fact = Fact.from_points(self.model.extension(sub), name=str(sub))
        sample = assignment.sample_space(agent, point)
        space = assignment.space(agent, point)
        event = assignment.satisfying_points(agent, point, fact)
        cells = []
        for cell in space.event_cells(event):
            cells.append(
                {
                    "outcomes_mask": self.mask_of(cell.outcomes),
                    "measure": cell.measure,
                    "contained": cell.contained,
                    "overlapping": cell.overlapping,
                }
            )
        inner, outer = space.measure_interval(event)
        witness = space.inner_witness(event)
        return {
            "agent": agent,
            "sample_mask": self.mask_of(sample),
            "sample_size": len(sample),
            "event_mask": self.mask_of(event),
            "cells": cells,
            "inner": inner,
            "outer": outer,
            "witness_mask": self.mask_of(witness),
            "witness_measure": inner,
        }

    def _pr_at_least(self, formula: PrAtLeast, point: Point) -> DerivationNode:
        detail = self._probability_evidence(formula.agent, formula.sub, point)
        detail["alpha"] = formula.alpha
        holds = detail["inner"] >= formula.alpha
        return self._leaf(
            formula, point, "pr-at-least", holds,
            "Section 5: (P, c) |= Pr_i(phi) >= alpha iff the inner "
            "measure (mu_ic)_*(S_ic(phi)) >= alpha",
            detail,
        )

    def _pr_at_most(self, formula: PrAtMost, point: Point) -> DerivationNode:
        detail = self._probability_evidence(formula.agent, formula.sub, point)
        detail["beta"] = formula.beta
        holds = detail["outer"] <= formula.beta
        return self._leaf(
            formula, point, "pr-at-most", holds,
            "Section 5 (duality): Pr_i(phi) <= beta iff the outer "
            "measure (mu_ic)^*(S_ic(phi)) <= beta",
            detail,
        )

    # -- temporal --------------------------------------------------------

    def _next(self, formula: Next, point: Point) -> DerivationNode:
        successor = point.successor()
        return DerivationNode(
            rule="next",
            formula=str(formula),
            point=self.point_ref(point),
            holds=self.model.holds(formula, point),
            definition="Section 5: o phi holds at (r, k) iff phi holds at "
                       "(r, k+1) (end-stuttering at the horizon)",
            detail={"successor": self.point_ref(successor)},
            children=(self.node(formula.sub, successor),),
        )

    def _until(self, formula: Until, point: Point) -> DerivationNode:
        holds = self.model.holds(formula, point)
        detail: Dict = {}
        children: Tuple[DerivationNode, ...] = ()
        if holds:
            run = point.run
            for time in range(point.time, run.horizon):
                future = Point(run, time)
                if self.model.holds(formula.right, future):
                    detail["witness_time"] = time
                    children = (self.node(formula.right, future),)
                    break
        return DerivationNode(
            rule="until",
            formula=str(formula),
            point=self.point_ref(point),
            holds=holds,
            definition="Section 5: phi U psi holds iff psi eventually "
                       "holds on the run and phi holds until then",
            detail=detail,
            children=children,
        )

    # -- group knowledge (Section 8) ------------------------------------

    def _everyone(self, formula: EveryoneKnows, point: Point) -> DerivationNode:
        return DerivationNode(
            rule="everyone-knows",
            formula=str(formula),
            point=self.point_ref(point),
            holds=self.model.holds(formula, point),
            definition="Section 8: E_G phi iff K_i phi for every i in G",
            detail={"group": list(formula.group)},
            children=tuple(
                self.node(Knows(agent, formula.sub), point)
                for agent in formula.group
            ),
        )

    def _everyone_prob(self, formula: EveryoneKnowsProb, point: Point) -> DerivationNode:
        return DerivationNode(
            rule="everyone-knows-prob",
            formula=str(formula),
            point=self.point_ref(point),
            holds=self.model.holds(formula, point),
            definition="Section 8: E_G^alpha phi iff K_i^alpha phi for "
                       "every i in G, with K_i^alpha phi = "
                       "K_i(Pr_i(phi) >= alpha) per Section 5",
            detail={"group": list(formula.group), "alpha": formula.alpha},
            children=tuple(
                self.node(
                    knows_prob_at_least(agent, formula.alpha, formula.sub), point
                )
                for agent in formula.group
            ),
        )

    def _common(self, formula, point: Point) -> DerivationNode:
        probabilistic = isinstance(formula, CommonKnowsProb)
        holds = self.model.holds(formula, point)
        # Re-run the fixpoint on a fresh model (empty memo) under a
        # ProvenanceRecorder layered over the active recorder, so the
        # per-iteration gfp snapshots are captured without disturbing
        # whatever instrumentation the caller installed.
        recorder = ProvenanceRecorder()
        with use_recorder(MultiRecorder([get_recorder(), recorder])):
            fresh = self.model.with_assignment(self.model.assignment)
            fixpoint_mask = fresh.extension_mask(formula)
        snapshots = _final_gfp_snapshots(recorder)
        detail: Dict = {
            "group": list(formula.group),
            "fixpoint_mask": fixpoint_mask,
            "fixpoint_size": bin(fixpoint_mask).count("1"),
            "iterations": len(snapshots),
            "iteration_snapshots": [
                {
                    "iteration": snapshot["iteration"],
                    "updated_size": snapshot["updated_size"],
                    "updated_mask": snapshot["updated_mask"],
                }
                for snapshot in snapshots
            ],
        }
        if probabilistic:
            detail["alpha"] = formula.alpha
            rule = "common-knows-prob"
            definition = (
                "Section 8: C_G^alpha phi is the greatest fixed point of "
                "X == E_G^alpha(phi & X) (Fagin-Halpern probabilistic "
                "common knowledge), computed by downward iteration"
            )
            child = self.node(
                EveryoneKnowsProb(formula.group, formula.alpha, formula.sub),
                point,
            )
        else:
            rule = "common-knows"
            definition = (
                "Section 8: C_G phi is the greatest fixed point of "
                "X == E_G(phi & X), computed by downward iteration"
            )
            child = self.node(EveryoneKnows(formula.group, formula.sub), point)
        return DerivationNode(
            rule=rule,
            formula=str(formula),
            point=self.point_ref(point),
            holds=holds,
            definition=definition,
            detail=detail,
            children=(child,),
        )


def _final_gfp_snapshots(recorder: ProvenanceRecorder) -> List[Dict]:
    """The iteration snapshots of the *last completed* fixpoint.

    Extensions compute bottom-up, so when a formula nests several
    common-knowledge operators the outermost fixpoint finishes last; its
    snapshots are the ``gfp_iteration`` events after the second-to-last
    ``gfp`` terminator.
    """
    groups: List[List[Dict]] = []
    current: List[Dict] = []
    for kind, fields in recorder.events:
        if kind == "gfp_iteration":
            current.append(fields)
        elif kind == "gfp":
            groups.append(current)
            current = []
    return groups[-1] if groups else []


def explain(model: Model, formula: Formula, point: Point) -> Derivation:
    """Build the full derivation of ``(P, c) |= formula`` (Sections 4-8).

    The public entry point behind :meth:`Model.explain`.  The returned
    :class:`~repro.obs.provenance.Derivation` names the probability
    assignment interpreting ``Pr_i`` (the Section 6 lattice: ``post``,
    ``fut``, ``opp(j)``, ``prior``), and its root verdict always equals
    ``model.holds(formula, point)``.  Raises
    :class:`~repro.errors.LogicError` if the point is not a point of the
    system.
    """
    explainer = _Explainer(model)
    if point not in explainer.index:
        raise LogicError(f"{point!r} is not a point of this system")
    return Derivation(
        assignment=model.assignment.name,
        formula=str(formula),
        point=explainer.point_ref(point),
        root=explainer.node(formula, point),
    )


def resolve_point_ref(system: System, ref: Dict) -> Point:
    """Decode a ``{"bit", ...}`` point reference back to the system point.

    The inverse of the encoding :func:`explain` writes: ``bit`` is the
    point's position in the system's shared point index (the same index
    every Section 5 extension mask is built over).
    """
    members = tuple(system.point_index.members)
    bit = ref["bit"]
    if not isinstance(bit, int) or not 0 <= bit < len(members):
        raise LogicError(f"point reference bit {bit!r} is outside the system")
    return members[bit]


def audit_derivation(
    model: Model, derivation: Derivation, formula: Optional[Formula] = None
) -> List[str]:
    """Independently re-check a derivation's evidence; defects as messages.

    The auditor confirms, node by node, exactly what the acceptance bar
    of the provenance layer demands:

    * every verdict agrees with the checker (``model.holds``);
    * for ``Pr_i`` nodes, the recorded cell measures **sum exactly** to
      the reported inner/outer probabilities (Fraction equality -- the
      Section 5 inner measure is the mass of contained cells), and the
      witness event's measure equals the inner bound;
    * for failing ``K_i`` nodes (hence failing ``K_i^alpha phi``,
      Section 5), the recorded counterexample point exists, lies in
      ``K_i(c)``, and the checker confirms the subformula fails there.

    Passing the original ``formula`` additionally re-checks the root
    verdict against ``model.holds``.  An empty list certifies the
    derivation.
    """
    defects: List[str] = []

    def check_node(node: DerivationNode, path: str) -> None:
        point = None
        if node.point is not None:
            try:
                point = resolve_point_ref(model.system, node.point)
            except LogicError as error:
                defects.append(f"{path}: bad point reference ({error})")
        if node.rule in ("pr-at-least", "pr-at-most"):
            inner = fraction_from_json(node.detail["inner"])
            outer = fraction_from_json(node.detail["outer"])
            contained_sum = ZERO
            overlap_sum = ZERO
            for cell in node.detail["cells"]:
                measure = fraction_from_json(cell["measure"])
                if cell["contained"]:
                    contained_sum += measure
                if cell["overlapping"]:
                    overlap_sum += measure
            if contained_sum != inner:
                defects.append(
                    f"{path}: contained cells sum to {contained_sum}, "
                    f"reported inner is {inner}"
                )
            if overlap_sum != outer:
                defects.append(
                    f"{path}: overlapping cells sum to {overlap_sum}, "
                    f"reported outer is {outer}"
                )
            witness_measure = fraction_from_json(node.detail["witness_measure"])
            if witness_measure != inner:
                defects.append(
                    f"{path}: witness measure {witness_measure} != inner {inner}"
                )
        if node.rule == "knows" and not node.holds:
            ref = node.detail.get("counterexample")
            if ref is None:
                defects.append(f"{path}: failing K_i node has no counterexample")
            else:
                try:
                    candidate = resolve_point_ref(model.system, ref)
                except LogicError as error:
                    defects.append(f"{path}: bad counterexample ({error})")
                else:
                    class_mask = node.detail["class_mask"]
                    if not class_mask >> ref["bit"] & 1:
                        defects.append(
                            f"{path}: counterexample lies outside K_i(c)"
                        )
                    if point is not None and candidate is not None:
                        agent = node.detail["agent"]
                        if candidate not in model.system.knowledge_set(agent, point):
                            defects.append(
                                f"{path}: counterexample not considered "
                                f"possible by agent {agent} at {node.point}"
                            )
        for position, child in enumerate(node.children):
            check_node(child, f"{path}.children[{position}]")

    check_node(derivation.root, "root")
    try:
        top = resolve_point_ref(model.system, derivation.point)
    except LogicError as error:
        defects.append(f"derivation point: {error}")
        return defects
    if formula is not None and model.holds(formula, top) != derivation.holds:
        defects.append(
            "root: derivation verdict disagrees with model.holds "
            f"for {derivation.formula!r}"
        )
    return defects
