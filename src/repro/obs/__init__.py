"""Deterministic observability: recorders, metrics, and JSONL tracing.

The reproduction's results are exact and deterministic; this subpackage
makes the *computation* of those results inspectable without ever being
able to perturb them.  Instrumented code (the bitmask measure kernels,
the model-checking fixpoints, the fault-tolerant sweep engine) reports
counters, gauges, events and timing spans to the process-global
:func:`get_recorder`, which defaults to the no-op :class:`NullRecorder`.

* :class:`MetricsRecorder` aggregates in memory (cache hit rates, gfp
  iteration counts, retry totals) for benchmark reports.
* :class:`TraceRecorder` streams schema ``repro-trace/1`` JSONL for the
  ``tools/tracereport`` CLI.
* :class:`ProvenanceRecorder` collects semantic provenance -- the
  ``repro-explain/1`` derivation trees built by ``Model.explain`` and the
  gfp iteration snapshots of the common-knowledge fixpoints -- for
  ``tools/tracediff`` and the auditability layer.
* :mod:`repro.obs.derivstore` hash-conses derivation subtrees by their
  Merkle fingerprints into the ``repro-explain/2`` DAG encoding (with a
  lossless bridge to ``repro-explain/1``), and :mod:`repro.obs.audit`
  chains sweep rows and their derivation roots into ``repro-audit/1``
  Merkle-chained audit bundles for ``tools/verifyaudit``.
* :mod:`repro.obs.snapshot` freezes aggregates into ``repro-metrics/1``
  snapshots and ships per-attempt deltas across process boundaries --
  the cross-process telemetry the sweep engine's workers use, so the
  parent's counters cover the whole sweep.
* :mod:`repro.obs.clock` quarantines every wall-clock read in the
  library (statically enforced by reprolint RL008).

See ``docs/observability.md`` for the recorder protocol, the trace
schema, and a worked example.
"""

from . import clock
from .audit import (
    AUDIT_SCHEMA,
    AuditBundle,
    AuditBundleWriter,
    bundle_root,
    read_audit_bundle,
    verify_bundle,
)
from .derivstore import (
    EXPLAIN_SCHEMA_2,
    DerivationStore,
    decode_derivation,
    downgrade,
    encode_derivation,
    encoded_size,
    node_fingerprint,
    upgrade,
)
from .metrics import MetricsRecorder, SpanStats
from .provenance import (
    EXPLAIN_SCHEMA,
    Derivation,
    DerivationNode,
    ProvenanceRecorder,
    derivation_from_json,
    read_derivation,
    render_derivation,
    write_derivation,
)
from .recorder import (
    MultiRecorder,
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    get_recorder,
    set_recorder,
    use_recorder,
)
from .snapshot import (
    METRICS_SCHEMA,
    MetricsSnapshotWriter,
    ObsDeltaCapture,
    merge_worker_delta,
    read_snapshot,
    read_snapshots,
    snapshot_delta,
    take_snapshot,
    write_snapshot,
)
from .trace import TRACE_SCHEMA, TraceRecorder, read_trace

__all__ = [
    "AUDIT_SCHEMA",
    "AuditBundle",
    "AuditBundleWriter",
    "Derivation",
    "DerivationNode",
    "DerivationStore",
    "EXPLAIN_SCHEMA",
    "EXPLAIN_SCHEMA_2",
    "METRICS_SCHEMA",
    "MetricsRecorder",
    "MetricsSnapshotWriter",
    "MultiRecorder",
    "NULL_RECORDER",
    "NullRecorder",
    "ObsDeltaCapture",
    "ProvenanceRecorder",
    "Recorder",
    "SpanStats",
    "TRACE_SCHEMA",
    "TraceRecorder",
    "bundle_root",
    "clock",
    "decode_derivation",
    "derivation_from_json",
    "downgrade",
    "encode_derivation",
    "encoded_size",
    "get_recorder",
    "node_fingerprint",
    "merge_worker_delta",
    "read_audit_bundle",
    "read_derivation",
    "read_snapshot",
    "read_snapshots",
    "read_trace",
    "render_derivation",
    "set_recorder",
    "snapshot_delta",
    "take_snapshot",
    "upgrade",
    "use_recorder",
    "verify_bundle",
    "write_snapshot",
]
