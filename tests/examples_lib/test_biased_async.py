"""The 0.99-coin example: P_pts versus Fischer-Zuck P_state (Section 7)."""

from fractions import Fraction

import pytest

from repro.core import PostAssignment, ProbabilityAssignment
from repro.examples_lib import biased_async_system, pts_versus_state_intervals


@pytest.fixture(scope="module")
def example():
    return biased_async_system()


class TestSystemShape:
    def test_two_runs_four_points(self, example):
        assert len(example.psys.system.runs) == 2
        assert len(example.psys.system.points) == 4

    def test_three_nodes(self, example):
        (tree,) = example.psys.trees
        assert len(tree.nodes) == 3  # R, H, T

    def test_p2_distinguishes_only_h1(self, example):
        system = example.psys.system
        h1 = next(
            point
            for point in system.points
            if point.time == 1 and example.heads.holds_at(point)
        )
        assert system.knowledge_set(1, h1) == frozenset({h1})
        others = frozenset(system.points) - {h1}
        for point in others:
            assert system.knowledge_set(1, point) == others

    def test_asynchronous(self, example):
        assert not example.psys.system.is_synchronous()


class TestPaperIntervals:
    def test_pts_gives_sharp_099(self, example):
        pts, _ = pts_versus_state_intervals(example)
        assert pts == (Fraction(99, 100), Fraction(99, 100))

    def test_state_gives_0_to_099(self, example):
        _, state = pts_versus_state_intervals(example)
        assert state == (Fraction(0), Fraction(99, 100))

    def test_pts_equals_post_interval(self, example):
        # Proposition 10 instantiated on this example
        post = ProbabilityAssignment(PostAssignment(example.psys))
        anchor = example.time0_points[0]
        assert post.knowledge_interval(1, anchor, example.heads) == (
            Fraction(99, 100),
            Fraction(99, 100),
        )

    def test_custom_bias(self):
        example = biased_async_system(Fraction(3, 4))
        pts, state = pts_versus_state_intervals(example)
        assert pts == (Fraction(3, 4), Fraction(3, 4))
        assert state == (Fraction(0), Fraction(3, 4))


class TestWhyStateDiffers:
    def test_the_t_cut_is_the_culprit(self, example):
        # the {T} state-cut excludes the h run entirely: heads has
        # probability 0 there, which pts cuts (one point per run) never do.
        from repro.core import PostAssignment, cut_probability_interval, enumerate_state_cuts

        post = PostAssignment(example.psys)
        anchor = example.time0_points[0]
        region = post.sample_space(1, anchor)
        values = {
            cut_probability_interval(example.psys, anchor, cut, example.heads)[0]
            for cut in enumerate_state_cuts(region)
        }
        assert Fraction(0) in values
