"""Message channels: who gets captured by the enemy.

A channel turns the messages sent in a round into a distribution over the
tuples actually delivered next round.  The coordinated-attack messengers
who "may be captured by the enemy" are a :class:`LossyChannel`; for the ten
identical messengers of CA1 the :class:`CollapsingLossyChannel` groups
identical messages and branches on *how many* survive (binomially), which
preserves every agent's knowledge while keeping the tree small -- the
substitution documented in DESIGN.md.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from fractions import Fraction
from itertools import combinations
from typing import Dict, List, Tuple

from ..errors import SimulationError
from ..probability.fractionutil import ONE, ZERO, FractionLike, as_fraction
from .messages import Message, sort_messages

DeliveryDistribution = List[Tuple[Fraction, Tuple[Message, ...]]]


class Channel(ABC):
    """Maps a round's sent messages to a distribution over deliveries."""

    @abstractmethod
    def deliveries(
        self, messages: Tuple[Message, ...], round_number: int
    ) -> DeliveryDistribution:
        """The distribution over delivered-message tuples."""


class PerfectChannel(Channel):
    """Every message is delivered."""

    def deliveries(
        self, messages: Tuple[Message, ...], round_number: int
    ) -> DeliveryDistribution:
        return [(ONE, sort_messages(messages))]


class LossyChannel(Channel):
    """Each message is independently lost with a fixed probability.

    Exact: branches over every subset of the sent messages, so the branch
    count is ``2**len(messages)``; ``max_messages`` guards against
    accidental blow-ups (use :class:`CollapsingLossyChannel` for bundles of
    identical messengers).
    """

    def __init__(self, loss_probability: FractionLike, max_messages: int = 12) -> None:
        self.loss_probability = as_fraction(loss_probability)
        if not ZERO <= self.loss_probability <= ONE:
            raise SimulationError(f"loss probability {self.loss_probability} outside [0,1]")
        self.max_messages = max_messages

    def deliveries(
        self, messages: Tuple[Message, ...], round_number: int
    ) -> DeliveryDistribution:
        messages = sort_messages(messages)
        if not messages or self.loss_probability == ZERO:
            return [(ONE, messages)]
        if self.loss_probability == ONE:
            return [(ONE, ())]
        if len(messages) > self.max_messages:
            raise SimulationError(
                f"{len(messages)} messages would produce 2**{len(messages)} branches; "
                "use CollapsingLossyChannel"
            )
        survive = ONE - self.loss_probability
        branches: DeliveryDistribution = []
        for kept in range(len(messages) + 1):
            for subset in combinations(range(len(messages)), kept):
                probability = survive**kept * self.loss_probability ** (
                    len(messages) - kept
                )
                delivered = tuple(messages[index] for index in subset)
                branches.append((probability, sort_messages(delivered)))
        return _merge_identical(branches)


class CollapsingLossyChannel(Channel):
    """Independent loss, branching on survivor *counts* per message kind.

    Identical messages (same sender, recipient, content) are
    interchangeable: only how many arrive can matter to any local state.
    Deliveries branch over the joint survivor counts with binomial
    probabilities -- ``n+1`` branches for ``n`` identical messengers instead
    of ``2**n``.
    """

    def __init__(self, loss_probability: FractionLike) -> None:
        self.loss_probability = as_fraction(loss_probability)
        if not ZERO <= self.loss_probability <= ONE:
            raise SimulationError(f"loss probability {self.loss_probability} outside [0,1]")

    def deliveries(
        self, messages: Tuple[Message, ...], round_number: int
    ) -> DeliveryDistribution:
        from ..probability.distributions import binomial_survivors, joint

        messages = sort_messages(messages)
        if not messages:
            return [(ONE, ())]
        kinds: Dict[Message, int] = {}
        for message in messages:
            kinds[message] = kinds.get(message, 0) + 1
        kind_list = sorted(kinds, key=lambda message: repr(message))
        count_distributions = [
            binomial_survivors(kinds[kind], self.loss_probability) for kind in kind_list
        ]
        branches: DeliveryDistribution = []
        for probability, counts in joint(*count_distributions):
            delivered: List[Message] = []
            for kind, count in zip(kind_list, counts):
                delivered.extend([kind] * count)
            branches.append((probability, sort_messages(delivered)))
        return _merge_identical(branches)


def _merge_identical(branches: DeliveryDistribution) -> DeliveryDistribution:
    """Merge branches that deliver exactly the same message tuple."""
    merged: Dict[Tuple[Message, ...], Fraction] = {}
    for probability, delivered in branches:
        merged[delivered] = merged.get(delivered, ZERO) + probability
    return [(probability, delivered) for delivered, probability in merged.items()]
