"""Per-module extraction: one AST pass producing a JSON-native summary.

This is the cacheable half of the analyzer.  For each source file it
computes everything that depends only on that file's bytes -- the
module's symbol table (imports resolved to absolute dotted targets,
classes with their methods and bases, module-level constants), one
record per function with its *intrinsic* effect sites, raw call
references, float-taint seeds, docstring contracts, and task-payload
call descriptors -- as plain dicts/lists/strings, so the result can be
stored keyed by the file's sha256 and reloaded without re-parsing
(:mod:`tools.reproflow.cache`).

Nothing here looks across files.  Cross-module resolution and the
effect fixpoint live in :mod:`tools.reproflow.program`, which consumes
these summaries.

Raw call references (``ref``) come in five shapes, resolved later:

* ``["name", "f"]`` -- a bare name in module/local scope
* ``["dotted", "a.b.c"]`` -- an attribute chain rooted at a bare name
* ``["local", "outer.<locals>.inner"]`` -- a nested ``def`` in scope
* ``["self", "method"]`` -- ``self.method(...)`` / ``cls.method(...)``
* ``["typed", "ClassRef", "method"]`` -- method call on a local variable
  whose class is statically known from ``var = ClassRef(...)``
"""

from __future__ import annotations

import ast
import hashlib
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..reprolint.model import parse_suppressions

#: Bump when the extraction output changes shape or semantics; cached
#: summaries written by other versions are discarded wholesale.
EXTRACT_SCHEMA = "reproflow-extract/1"

#: Clock-reading attributes of the ``time`` module (mirrors reprolint
#: RL008, the intra-file spelling of the same quarantine).
CLOCK_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "thread_time",
        "thread_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
        "localtime",
        "gmtime",
    }
)

#: Clock-reading callables of the ``datetime`` module.
CLOCK_DATETIME_CALLS = frozenset(
    {
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: Module-level functions of ``random`` that draw from the hidden global
#: generator -- unseeded by construction.  ``random.Random(seed)`` is
#: the sanctioned spelling and is only flagged when called with no seed.
UNSEEDED_RANDOM_ATTRS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "getrandbits",
        "seed",
    }
)

#: Other unseedable entropy sources.
ENTROPY_CALLS = frozenset({"os.urandom", "uuid.uuid4", "secrets"})

#: Mutating methods of the builtin containers; calling one on an object
#: rooted at a module-level name mutates process-global state.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "sort",
        "reverse",
    }
)

#: ``os`` functions that touch the filesystem (informational ``io``).
OS_IO_ATTRS = frozenset(
    {"fsync", "remove", "replace", "rename", "makedirs", "mkdir", "rmdir", "unlink"}
)

#: Docstring contract markers (RL012).  A docstring line whose stripped
#: form starts with one of these declares the contract.
CONTRACT_MARKERS = {
    "Deterministic.": "deterministic",
    "Exact.": "exact",
}


def sha256_of(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _dotted_chain(node: ast.AST) -> Optional[str]:
    """Flatten ``a.b.c`` attribute chains rooted at a bare Name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_name_for(path_parts: Sequence[str], root_package: str) -> str:
    """Dotted module name: ``("attack", "sweep")`` -> ``repro.attack.sweep``."""
    parts = list(path_parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([root_package] + parts)


def _resolve_import_from(
    node: ast.ImportFrom, module_name: str, is_package_init: bool
) -> Optional[str]:
    """Absolute dotted module an ImportFrom pulls from, or None for ``*``
    escapes above the scanned root."""
    if node.level == 0:
        return node.module
    # Relative import: strip `level` components off the importer's
    # package path.  A package __init__ counts as the package itself.
    parts = module_name.split(".")
    if not is_package_init:
        parts = parts[:-1]
    drop = node.level - 1
    if drop > len(parts):
        return None
    base = parts[: len(parts) - drop] if drop else parts
    if node.module:
        return ".".join(base + node.module.split("."))
    return ".".join(base)


class _FunctionExtractor:
    """Walks one function body collecting intrinsic facts."""

    def __init__(
        self,
        module: "_ModuleExtractor",
        node: ast.AST,
        qualname: str,
        class_name: Optional[str],
        nested: bool,
    ) -> None:
        self.module = module
        self.node = node
        self.qualname = qualname
        self.class_name = class_name
        self.nested = nested
        self.effects: Dict[str, List[Dict[str, object]]] = {}
        self.calls: List[Dict[str, object]] = []
        self.payload_calls: List[Dict[str, object]] = []
        self.return_taint: List[Dict[str, object]] = []
        self.float_sites: List[Dict[str, object]] = []
        self.float_return_sites: List[Dict[str, object]] = []
        # Local scope: parameters and assigned names.
        self.locals: Set[str] = set()
        self.tainted_locals: Set[str] = set()
        #: local name -> ref of the call whose result it holds (for
        #: ``x = helper(); return x`` taint threading).
        self.call_valued_locals: Dict[str, Tuple] = {}
        #: local name -> raw class ref from ``var = ClassRef(...)``.
        self.typed_locals: Dict[str, str] = {}
        #: names bound by nested defs: name -> qualname.
        self.local_defs: Dict[str, str] = {}

    # -- scope ---------------------------------------------------------

    def _collect_scope(self, body: Sequence[ast.stmt]) -> None:
        args = getattr(self.node, "args", None)
        if args is not None:
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                self.locals.add(arg.arg)
        for stmt in ast.walk(ast.Module(body=list(body), type_ignores=[])):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt is not self.node:
                    self.local_defs.setdefault(
                        stmt.name, f"{self.qualname}.<locals>.{stmt.name}"
                    )
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            self.locals.add(name_node.id)
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                if isinstance(stmt.target, ast.Name):
                    self.locals.add(stmt.target.id)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                for name_node in ast.walk(stmt.target):
                    if isinstance(name_node, ast.Name):
                        self.locals.add(name_node.id)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        for name_node in ast.walk(item.optional_vars):
                            if isinstance(name_node, ast.Name):
                                self.locals.add(name_node.id)

    # -- refs ----------------------------------------------------------

    def ref_of(self, func: ast.expr) -> Optional[Tuple]:
        """The raw reference of a call target expression, if static."""
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.local_defs:
                return ("local", self.local_defs[name])
            if name in self.typed_locals:
                # Calling an instance: its __call__ method.
                return ("typed", self.typed_locals[name], "__call__")
            if name in self.locals:
                return None  # a plain local variable: dynamic
            return ("name", name)
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name):
                base = func.value.id
                if base in ("self", "cls") and self.class_name is not None:
                    return ("self", func.attr)
                if base in self.typed_locals:
                    return ("typed", self.typed_locals[base], func.attr)
                if base in self.locals and base not in ("self", "cls"):
                    return None
            dotted = _dotted_chain(func)
            if dotted is not None:
                return ("dotted", dotted)
        return None

    def _callee_dotted(self, func: ast.expr) -> Optional[str]:
        """The import-resolved dotted name of a call target, for the
        clock/random/io classifiers.  ``None`` when dynamic."""
        if isinstance(func, ast.Name):
            if func.id in self.locals or func.id in self.local_defs:
                return None
            return self.module.imports.get(func.id, func.id)
        dotted = _dotted_chain(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in self.locals or head in self.local_defs:
            return None
        head = self.module.imports.get(head, head)
        return f"{head}.{rest}" if rest else head

    # -- intrinsic effect classification -------------------------------

    def _record(self, effect: str, node: ast.AST, detail: str) -> None:
        self.effects.setdefault(effect, []).append(
            {"line": getattr(node, "lineno", 1), "detail": detail}
        )

    def _classify_call(self, node: ast.Call) -> None:
        dotted = self._callee_dotted(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        root = parts[0]
        if root == "time" and len(parts) == 2 and parts[1] in CLOCK_TIME_ATTRS:
            self._record("reads_clock", node, f"{dotted}()")
        elif dotted in CLOCK_DATETIME_CALLS or (
            root == "datetime" and parts[-1] in ("now", "today", "utcnow")
        ):
            self._record("reads_clock", node, f"{dotted}()")
        elif root == "random" and len(parts) == 2:
            if parts[1] in UNSEEDED_RANDOM_ATTRS:
                self._record("unseeded_random", node, f"{dotted}()")
            elif parts[1] in ("Random", "SystemRandom") and not (
                node.args or node.keywords
            ):
                self._record("unseeded_random", node, f"{dotted}() with no seed")
        elif dotted in ENTROPY_CALLS or root == "secrets":
            self._record("unseeded_random", node, f"{dotted}()")
        elif dotted == "open":
            self._record("io", node, "open()")
        elif root == "os" and len(parts) == 2 and parts[1] in OS_IO_ATTRS:
            self._record("io", node, f"{dotted}()")
        elif dotted == "print":
            self._record("io", node, "print()")

    def _global_mutation_root(self, target: ast.expr) -> Optional[str]:
        """Module-level name a mutation chain is rooted at, if any."""
        node = target
        seen_container = False
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            seen_container = True
            node = node.value
        if not seen_container:
            return None
        if isinstance(node, ast.Name):
            name = node.id
            if name in self.locals or name in self.local_defs:
                return None
            if self.module.binds_at_module_level(name):
                return name
        return None

    def _classify_mutation(self, stmt: ast.stmt) -> None:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            root = self._global_mutation_root(target)
            if root is not None:
                self._record(
                    "mutates_global", stmt, f"writes module-level '{root}'"
                )

    def _classify_mutating_method(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in MUTATING_METHODS:
            return
        base = func.value
        while isinstance(base, (ast.Attribute, ast.Subscript)):
            base = base.value
        if isinstance(base, ast.Name):
            name = base.id
            if name in self.locals or name in self.local_defs:
                return
            if self.module.binds_at_module_level(name):
                self._record(
                    "mutates_global",
                    node,
                    f"calls .{func.attr}() on module-level '{name}'",
                )

    # -- float taint ---------------------------------------------------

    def _float_expr(self, node: ast.expr) -> Optional[str]:
        """A human-readable reason the expression is float-valued, or None."""
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return f"float literal {node.value!r}"
        if isinstance(node, ast.Name):
            if node.id in self.tainted_locals:
                return f"float-tainted local '{node.id}'"
            return None
        if isinstance(node, ast.Call):
            dotted = self._callee_dotted(node.func)
            if dotted == "float":
                return "float() conversion"
            if dotted is not None:
                root = dotted.split(".")[0]
                if root in ("math", "cmath"):
                    return f"{dotted}() returns float"
                if (
                    root == "time"
                    and dotted.split(".")[-1] in CLOCK_TIME_ATTRS
                    and not dotted.endswith("_ns")
                ):
                    return f"{dotted}() returns float seconds"
            return None
        if isinstance(node, ast.BinOp):
            return self._float_expr(node.left) or self._float_expr(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._float_expr(node.operand)
        if isinstance(node, ast.IfExp):
            return self._float_expr(node.body) or self._float_expr(node.orelse)
        return None

    def _return_call_refs(self, node: ast.expr) -> Iterator[Tuple]:
        """Call refs whose results flow (shallowly) into a return value."""
        if isinstance(node, ast.Call):
            ref = self.ref_of(node.func)
            if ref is not None:
                yield ref
        elif isinstance(node, (ast.BinOp,)):
            yield from self._return_call_refs(node.left)
            yield from self._return_call_refs(node.right)
        elif isinstance(node, ast.UnaryOp):
            yield from self._return_call_refs(node.operand)
        elif isinstance(node, ast.IfExp):
            yield from self._return_call_refs(node.body)
            yield from self._return_call_refs(node.orelse)
        elif isinstance(node, ast.Tuple):
            for element in node.elts:
                yield from self._return_call_refs(element)
        elif isinstance(node, ast.Name):
            if node.id in self.call_valued_locals:
                yield self.call_valued_locals[node.id]

    # -- payload descriptors -------------------------------------------

    def _payload_desc(self, arg: ast.expr) -> Dict[str, object]:
        if isinstance(arg, ast.Lambda):
            return {"kind": "lambda", "line": arg.lineno}
        if isinstance(arg, ast.Call):
            ref = self.ref_of(arg.func)
            if ref is not None:
                return {"kind": "constructed", "ref": list(ref), "line": arg.lineno}
            return {"kind": "opaque"}
        refs = self._name_candidates(arg)
        if refs is None:
            return {"kind": "opaque"}
        return {
            "kind": "refs",
            "refs": [list(ref) for ref in refs],
            "line": getattr(arg, "lineno", 1),
        }

    def _name_candidates(self, arg: ast.expr) -> Optional[List[Tuple]]:
        """Static candidates for a payload expression: the expression
        itself, or -- for a local name -- every function-shaped value
        assigned to it in this body (handles ``f = a if cond else b``)."""
        if isinstance(arg, ast.IfExp):
            left = self._name_candidates(arg.body)
            right = self._name_candidates(arg.orelse)
            if left is None and right is None:
                return None
            return (left or []) + (right or [])
        if isinstance(arg, ast.Attribute):
            ref = self.ref_of(arg)
            return [ref] if ref is not None else None
        if not isinstance(arg, ast.Name):
            return None
        name = arg.id
        if name in self.local_defs:
            return [("local", self.local_defs[name])]
        if name not in self.locals:
            return [("name", name)]
        # A local variable: chase its static assignments.
        candidates: List[Tuple] = []
        for stmt in ast.walk(self.node):
            if not isinstance(stmt, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == name for t in stmt.targets
            ):
                continue
            nested = self._name_candidates(stmt.value)
            if nested:
                candidates.extend(nested)
            elif isinstance(stmt.value, ast.Lambda):
                candidates.append(("lambda", stmt.value.lineno))
        return candidates or None

    # -- driver --------------------------------------------------------

    def run(self) -> Dict[str, object]:
        body = list(getattr(self.node, "body", []))
        self._collect_scope(body)
        # Typed locals and call-valued locals in one ordered prepass.
        for stmt in self._own_statements():
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name) and isinstance(stmt.value, ast.Call):
                    callee = stmt.value.func
                    dotted = (
                        callee.id
                        if isinstance(callee, ast.Name)
                        else _dotted_chain(callee)
                    )
                    if dotted is not None:
                        self.typed_locals[target.id] = dotted
                        ref = self.ref_of(stmt.value.func)
                        if ref is not None:
                            self.call_valued_locals[target.id] = ref
        # Two passes so a taint assigned below a use still registers
        # (loops); the set only grows, so two passes reach the fixpoint
        # of this flow-insensitive approximation.
        for _ in range(2):
            for stmt in self._own_statements():
                if isinstance(stmt, ast.Assign):
                    reason = self._float_expr(stmt.value)
                    if reason is not None:
                        for target in stmt.targets:
                            if isinstance(target, ast.Name):
                                self.tainted_locals.add(target.id)
                elif isinstance(stmt, ast.AugAssign):
                    if isinstance(stmt.target, ast.Name):
                        if self._float_expr(stmt.value) or self._float_expr(
                            stmt.target
                        ):
                            self.tainted_locals.add(stmt.target.id)
        for node in self._own_nodes():
            if isinstance(node, ast.Call):
                self._classify_call(node)
                self._classify_mutating_method(node)
                ref = self.ref_of(node.func)
                if ref is not None:
                    self.calls.append({"ref": list(ref), "line": node.lineno})
                self._extract_payload(node, ref)
            elif isinstance(node, ast.Global):
                self._record(
                    "mutates_global",
                    node,
                    f"'global {', '.join(node.names)}' rebinding",
                )
            elif isinstance(node, ast.Return) and node.value is not None:
                reason = self._float_expr(node.value)
                if reason is not None:
                    self.float_return_sites.append(
                        {"line": node.lineno, "detail": reason}
                    )
                for ref in self._return_call_refs(node.value):
                    self.return_taint.append({"ref": list(ref), "line": node.lineno})
            if isinstance(node, ast.stmt):
                self._classify_mutation(node)
            if isinstance(node, ast.expr):
                reason = self._float_expr(node)
                if reason is not None and not isinstance(node, ast.Name):
                    self.float_sites.append(
                        {"line": getattr(node, "lineno", 1), "detail": reason}
                    )
        return {
            "name": self.qualname,
            "line": self.node.lineno,
            "col": self.node.col_offset,
            "class": self.class_name,
            "nested": self.nested,
            "is_lambda": False,
            "effects": self.effects,
            "calls": self.calls,
            "payload_calls": self.payload_calls,
            "return_taint": self.return_taint,
            "float_sites": self.float_sites,
            "float_return_sites": self.float_return_sites,
            "contracts": self._contracts(),
        }

    def _extract_payload(self, node: ast.Call, callee_ref: Optional[Tuple]) -> None:
        """Record the first positional / ``function=`` / ``task_function=``
        argument of every resolvable call, so the rules can later check
        payloads shipped to the pool entry points."""
        if callee_ref is None:
            return
        payload_arg: Optional[ast.expr] = None
        if node.args:
            payload_arg = node.args[0]
        for keyword in node.keywords:
            if keyword.arg in ("function", "task_function"):
                payload_arg = keyword.value
        if payload_arg is None:
            return
        desc = self._payload_desc(payload_arg)
        if desc.get("kind") == "opaque":
            return
        self.payload_calls.append(
            {"ref": list(callee_ref), "line": node.lineno, "payload": desc}
        )

    def _own_statements(self) -> Iterator[ast.stmt]:
        for node in self._own_nodes():
            if isinstance(node, ast.stmt):
                yield node

    def _own_nodes(self) -> Iterator[ast.AST]:
        """Nodes of this function's body, not descending into nested defs
        (they get their own records) -- except the body of ``self.node``
        itself."""
        pending: List[ast.AST] = list(getattr(self.node, "body", []))
        while pending:
            node = pending.pop()
            yield node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
            ):
                continue
            pending.extend(ast.iter_child_nodes(node))

    def _contracts(self) -> List[str]:
        docstring = ast.get_docstring(self.node, clean=False)
        if not docstring:
            return []
        contracts: List[str] = []
        for line in docstring.splitlines():
            stripped = line.strip()
            for marker, contract in CONTRACT_MARKERS.items():
                if stripped.startswith(marker) and contract not in contracts:
                    contracts.append(contract)
        return sorted(contracts)


class _ModuleExtractor:
    """Extracts one module's summary from its AST."""

    def __init__(
        self,
        path: str,
        tree: ast.Module,
        module_name: str,
        is_package_init: bool,
    ) -> None:
        self.path = path
        self.tree = tree
        self.module_name = module_name
        self.is_package_init = is_package_init
        self.imports: Dict[str, str] = {}
        self.functions: Dict[str, Dict[str, object]] = {}
        self.classes: Dict[str, Dict[str, object]] = {}
        self.constants: Dict[str, Dict[str, object]] = {}
        self.exports: List[str] = []

    def binds_at_module_level(self, name: str) -> bool:
        return (
            name in self.imports
            or name in self.functions
            or name in self.classes
            or name in self.constants
        )

    def _collect_imports(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                source = _resolve_import_from(
                    node, self.module_name, self.is_package_init
                )
                if source is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.imports[alias.asname or alias.name] = (
                        f"{source}.{alias.name}"
                    )

    def _collect_module_scope(self) -> None:
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = _FunctionExtractor(
                    self, node, node.name, None, False
                ).run()
                self._collect_nested(node, node.name, None)
            elif isinstance(node, ast.ClassDef):
                self._collect_class(node)
            elif isinstance(node, ast.Assign):
                self._collect_constant(node.targets, node.value, node)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._collect_constant([node.target], node.value, node)

    def _collect_class(self, node: ast.ClassDef) -> None:
        methods: List[str] = []
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{node.name}.{item.name}"
                self.functions[qualname] = _FunctionExtractor(
                    self, item, qualname, node.name, False
                ).run()
                methods.append(item.name)
                self._collect_nested(item, qualname, node.name)
        bases: List[str] = []
        for base in node.bases:
            dotted = base.id if isinstance(base, ast.Name) else _dotted_chain(base)
            if dotted is not None:
                bases.append(dotted)
        self.classes[node.name] = {"methods": sorted(methods), "bases": bases}

    def _collect_nested(
        self, parent: ast.AST, parent_qualname: str, class_name: Optional[str]
    ) -> None:
        for item in getattr(parent, "body", []):
            for child in ast.walk(item):
                if (
                    isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and child is not parent
                    and self._direct_parent_function(child, parent)
                ):
                    qualname = f"{parent_qualname}.<locals>.{child.name}"
                    self.functions[qualname] = _FunctionExtractor(
                        self, child, qualname, class_name, True
                    ).run()
                    self._collect_nested(child, qualname, class_name)

    def _direct_parent_function(self, child: ast.AST, parent: ast.AST) -> bool:
        """True when ``child`` is nested in ``parent`` with no function in
        between (those are collected by their own parent's pass)."""
        for node in ast.walk(parent):
            if node is child:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is parent:
                    continue
                if any(sub is child for sub in ast.walk(node)):
                    return False
        return True

    def _collect_constant(
        self,
        targets: Sequence[ast.expr],
        value: ast.expr,
        node: ast.stmt,
    ) -> None:
        if len(targets) != 1 or not isinstance(targets[0], ast.Name):
            return
        name = targets[0].id
        if name == "__all__":
            if isinstance(value, (ast.List, ast.Tuple)):
                self.exports = [
                    element.value
                    for element in value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ]
            return
        if isinstance(value, ast.Call):
            callee = value.func
            dotted = (
                callee.id if isinstance(callee, ast.Name) else _dotted_chain(callee)
            )
            if dotted is not None:
                self.constants[name] = {
                    "kind": "instance",
                    "ctor": dotted,
                    "line": node.lineno,
                }
                return
        if isinstance(value, ast.Dict):
            refs = []
            for item in value.values:
                if isinstance(item, ast.Name):
                    refs.append(["name", item.id])
                elif isinstance(item, ast.Lambda):
                    refs.append(["lambda", item.lineno])
                else:
                    dotted = _dotted_chain(item)
                    if dotted is not None:
                        refs.append(["dotted", dotted])
            if refs:
                self.constants[name] = {
                    "kind": "registry",
                    "refs": refs,
                    "line": node.lineno,
                }
                return
        if isinstance(value, ast.Attribute):
            dotted = _dotted_chain(value)
            if dotted is not None:
                head, _, rest = dotted.partition(".")
                target = self.imports.get(head, head)
                full = f"{target}.{rest}" if rest else target
                parts = full.split(".")
                if (
                    parts[0] == "time"
                    and len(parts) == 2
                    and parts[1] in CLOCK_TIME_ATTRS
                ):
                    # ``perf_counter = _time.perf_counter`` in the clock
                    # quarantine: a synthetic clock-reading "function".
                    self.functions[name] = {
                        "name": name,
                        "line": node.lineno,
                        "col": node.col_offset,
                        "class": None,
                        "nested": False,
                        "is_lambda": False,
                        "effects": {
                            "reads_clock": [
                                {"line": node.lineno, "detail": f"{full} alias"}
                            ]
                        },
                        "calls": [],
                        "payload_calls": [],
                        "return_taint": [],
                        "float_sites": [],
                        "float_return_sites": [
                            {
                                "line": node.lineno,
                                "detail": f"{full} returns float seconds",
                            }
                        ],
                        "contracts": [],
                    }
                    return
        self.constants.setdefault(name, {"kind": "value", "line": node.lineno})

    def run(self) -> Dict[str, object]:
        self._collect_imports()
        self._collect_module_scope()
        return {
            "path": self.path,
            "module": self.module_name,
            "package_init": self.is_package_init,
            "imports": self.imports,
            "functions": self.functions,
            "classes": self.classes,
            "constants": self.constants,
            "exports": self.exports,
        }


def extract_module(
    path: str,
    source: str,
    rel_parts: Sequence[str],
    root_package: str,
) -> Dict[str, object]:
    """Parse and summarise one file.  Raises SyntaxError upward; the
    engine turns that into an RL000 diagnostic."""
    tree = ast.parse(source, filename=path)
    module_name = module_name_for(rel_parts, root_package)
    is_package_init = bool(rel_parts) and rel_parts[-1] == "__init__"
    summary = _ModuleExtractor(path, tree, module_name, is_package_init).run()
    suppressions = parse_suppressions(source.splitlines())
    summary["suppressions"] = [
        {"rule_id": decl.rule_id, "line": decl.line, "scope": decl.scope}
        for decl in suppressions.declarations
    ]
    return summary


__all__ = [
    "CLOCK_TIME_ATTRS",
    "CONTRACT_MARKERS",
    "EXTRACT_SCHEMA",
    "extract_module",
    "module_name_for",
    "sha256_of",
]
