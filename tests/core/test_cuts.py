"""Type-3 adversaries: cuts, cut classes, Proposition 10 (Section 7)."""

from fractions import Fraction

import pytest

from repro.core import (
    Fact,
    PostAssignment,
    ProbabilityAssignment,
    count_point_cuts,
    cut_probability_interval,
    enumerate_horizontal_cuts,
    enumerate_partial_cuts,
    enumerate_point_cuts,
    enumerate_state_cuts,
    interval_over_cuts,
    points_by_run,
    pts_interval,
    verify_proposition10,
)
from repro.errors import AssignmentError
from repro.examples_lib import biased_async_system, repeated_coin_system


@pytest.fixture(scope="module")
def biased():
    return biased_async_system()


@pytest.fixture(scope="module")
def region(biased):
    """p2's region at a time-0 point: {(h,0), (t,0), (t,1)}."""
    post = PostAssignment(biased.psys)
    return post.sample_space(1, biased.time0_points[0])


class TestCutEnumeration:
    def test_points_by_run_groups(self, region):
        groups = points_by_run(region)
        sizes = sorted(len(points) for points in groups.values())
        assert sizes == [1, 2]  # h-run contributes one point, t-run two

    def test_count_point_cuts(self, region):
        assert count_point_cuts(region) == 2

    def test_point_cuts_contents(self, region):
        cuts = list(enumerate_point_cuts(region))
        assert len(cuts) == 2
        for cut in cuts:
            assert len(cut) == 2  # one point per run
            assert len({point.run for point in cut}) == 2

    def test_point_cut_limit(self, region):
        with pytest.raises(AssignmentError):
            list(enumerate_point_cuts(region, limit=1))

    def test_partial_cuts(self, region):
        cuts = list(enumerate_partial_cuts(region))
        # (1+1)*(2+1) - 1 = 5 nonempty partial cuts
        assert len(cuts) == 5
        for cut in cuts:
            runs = [point.run for point in cut]
            assert len(runs) == len(set(runs))

    def test_state_cuts_are_antichains(self, region):
        cuts = list(enumerate_state_cuts(region))
        for cut in cuts:
            runs = [point.run for point in cut]
            # states may cover several runs, but no run twice
            assert len(runs) == len(set(runs))

    def test_state_cuts_match_paper(self, region):
        # The paper: choices are {R} and {T} (R covers both runs, T only t).
        cuts = {frozenset(point.time for point in cut) for cut in enumerate_state_cuts(region)}
        assert {frozenset({0}), frozenset({1})} == cuts

    def test_horizontal_cuts(self, region):
        cuts = list(enumerate_horizontal_cuts(region))
        assert len(cuts) == 2  # times 0 and 1
        assert all(len({point.time for point in cut}) == 1 for cut in cuts)


class TestCutProbabilities:
    def test_paper_pts_values(self, biased, region):
        anchor = biased.time0_points[0]
        values = {
            cut_probability_interval(biased.psys, anchor, cut, biased.heads)
            for cut in enumerate_point_cuts(region)
        }
        assert values == {(Fraction(99, 100), Fraction(99, 100))}

    def test_paper_state_values(self, biased, region):
        anchor = biased.time0_points[0]
        values = {
            cut_probability_interval(biased.psys, anchor, cut, biased.heads)
            for cut in enumerate_state_cuts(region)
        }
        assert values == {
            (Fraction(99, 100), Fraction(99, 100)),
            (Fraction(0), Fraction(0)),
        }

    def test_intervals_over_classes(self, biased):
        post = PostAssignment(biased.psys)
        anchor = biased.time0_points[0]
        pts = interval_over_cuts(biased.psys, post, 1, anchor, biased.heads, "pts")
        state = interval_over_cuts(biased.psys, post, 1, anchor, biased.heads, "state")
        assert pts == (Fraction(99, 100), Fraction(99, 100))
        assert state == (Fraction(0), Fraction(99, 100))

    def test_partial_cuts_widen_to_degenerate(self, biased):
        # the adversary that only lets you bet when you'd lose
        post = PostAssignment(biased.psys)
        anchor = biased.time0_points[0]
        partial = interval_over_cuts(
            biased.psys, post, 1, anchor, biased.heads, "partial"
        )
        assert partial == (Fraction(0), Fraction(1))


class TestClosedForm:
    def test_closed_form_equals_enumeration(self, biased):
        post = PostAssignment(biased.psys)
        anchor = biased.time0_points[0]
        closed = pts_interval(biased.psys, post, 1, anchor, biased.heads)
        enumerated = interval_over_cuts(
            biased.psys, post, 1, anchor, biased.heads, "pts"
        )
        assert closed == enumerated

    def test_closed_form_scales_to_big_region(self):
        # 3-toss system: the blind agent's region has 2**3 runs x 4 points.
        example = repeated_coin_system(3)
        post = PostAssignment(example.psys)
        anchor = next(iter(example.post_toss_points))
        low, high = pts_interval(
            example.psys, post, 0, anchor, example.most_recent_heads
        )
        # the root (pre-toss) point forces the inner measure to 0 here
        assert low == Fraction(0)
        assert high == Fraction(7, 8)


class TestProposition10:
    def test_post_equals_pts_small_system(self, biased):
        post = ProbabilityAssignment(PostAssignment(biased.psys))
        for agent in (0, 1):
            assert verify_proposition10(biased.psys, post, agent, biased.heads)

    def test_post_equals_pts_async_coin(self):
        example = repeated_coin_system(2)
        post = ProbabilityAssignment(PostAssignment(example.psys))
        assert verify_proposition10(
            example.psys, post, 0, example.most_recent_heads, enumeration_limit=200
        )
