"""Collect machine-readable benchmark timings into ``BENCH_<n>.json``.

``make bench-json`` runs this script.  It executes a curated set of
benchmark workloads with ``time.perf_counter``, tags each record with the
measure backend and system size, and writes one JSON document so the perf
trajectory is comparable PR-over-PR (see ``docs/performance.md`` for how
to read the output).  ``--smoke`` shrinks every parameter so CI can run
the same pipeline in seconds; the script exits nonzero if any benchmark
raises.

All probabilities in the report stay exact: Fractions are serialised as
``"p/q"`` strings.  Wall-clock seconds are, of course, floats.
"""

from __future__ import annotations

import argparse
import os
import platform
import sys
import time
import traceback
from fractions import Fraction
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "benchmarks"))

from repro.attack import guarantee_sweep, parallel_guarantee_sweep  # noqa: E402
from repro.probability import get_default_backend, use_backend  # noqa: E402
from repro.reporting import write_bench_json  # noqa: E402

from bench_scalability import pipeline  # noqa: E402

#: Wall time of the 10-toss scalability pipeline measured at the PR 1
#: tip (commit 0bc943a), before the bitmask measure engine landed.  The
#: acceptance bar for this PR is >= 3x against this number.
PRE_PR_PIPELINE_SECONDS = 0.574


def _timed(function, repeats: int):
    """Best-of-``repeats`` wall time plus the (stable) return value."""
    best = None
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = function()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, value


def bench_pipeline(records, tosses: int, backend: str, repeats: int) -> None:
    """The full scalability pipeline under one measure backend."""
    with use_backend(backend):
        seconds, (points, interval, clocked) = _timed(
            lambda: pipeline(tosses), repeats
        )
    records.append(
        {
            "name": "scalability_pipeline",
            "backend": backend,
            "params": {"tosses": tosses},
            "system": {"runs": 2**tosses, "points": points},
            "seconds": round(seconds, 4),
            "results": {"interval": interval, "clocked": sorted(clocked)},
        }
    )


def bench_sweep(records, messengers, repeats: int) -> None:
    """Serial vs parallel guarantee sweep on identical task lists."""
    losses = [Fraction(1, 2)]
    serial_seconds, serial_rows = _timed(
        lambda: guarantee_sweep(messengers, losses), repeats
    )
    parallel_seconds, parallel_rows = _timed(
        lambda: parallel_guarantee_sweep(messengers, losses), repeats
    )
    if serial_rows != parallel_rows:
        raise AssertionError("parallel sweep rows differ from serial rows")
    system_size = {"tasks": len(serial_rows)}
    records.append(
        {
            "name": "guarantee_sweep_serial",
            "backend": get_default_backend(),
            "params": {"messengers": list(messengers), "losses": losses},
            "system": system_size,
            "seconds": round(serial_seconds, 4),
            "results": {"rows": serial_rows},
        }
    )
    records.append(
        {
            "name": "guarantee_sweep_parallel",
            "backend": get_default_backend(),
            "params": {"messengers": list(messengers), "losses": losses},
            "system": system_size,
            "seconds": round(parallel_seconds, 4),
            "results": {"rows_match_serial": True},
        }
    )


def bench_common_knowledge(records, messengers: int, repeats: int) -> None:
    """Mask-based model checking: C^eps phi_CA on a CA2 system."""
    from repro.attack import build_ca2
    from repro.core import standard_assignments
    from repro.logic import CommonKnowsProb, Model, Prop

    def workload():
        attack = build_ca2(messengers, Fraction(1, 2))
        post = standard_assignments(attack.psys)["post"]
        model = Model(post, {"coord": attack.coordinated})
        formula = CommonKnowsProb(
            tuple(attack.group), Fraction(1, 2), Prop("coord")
        )
        return len(attack.psys.system.points), len(model.extension(formula))

    seconds, (points, extension_size) = _timed(workload, repeats)
    records.append(
        {
            "name": "common_knowledge_ca2",
            "backend": get_default_backend(),
            "params": {"messengers": messengers},
            "system": {"points": points},
            "seconds": round(seconds, 4),
            "results": {"extension_size": extension_size},
        }
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default="BENCH_2.json", help="where to write the report"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced parameters for CI (small systems, one repeat)",
    )
    args = parser.parse_args(argv)

    tosses = 6 if args.smoke else 10
    sweep_messengers = [1, 2] if args.smoke else [1, 2, 4, 7]
    ck_messengers = 2 if args.smoke else 4
    repeats = 1 if args.smoke else 5

    records: list = []
    errors: list = []
    for runner in (
        lambda: bench_pipeline(records, tosses, "bitmask", repeats),
        lambda: bench_pipeline(records, tosses, "naive", repeats),
        lambda: bench_sweep(records, sweep_messengers, repeats),
        lambda: bench_common_knowledge(records, ck_messengers, repeats),
    ):
        try:
            runner()
        except Exception:  # noqa: BLE001 - report every failure, then exit 1
            errors.append(traceback.format_exc())

    payload = {
        "schema": "repro-bench/1",
        "pr": 2,
        "generated_by": "benchmarks/collect.py"
        + (" --smoke" if args.smoke else ""),
        "smoke": args.smoke,
        "environment": {
            "python": platform.python_version(),
            # one core means the parallel sweep can only tie the serial
            # one; the record is still useful as an overhead measurement
            "cpu_count": os.cpu_count(),
        },
        "default_backend": get_default_backend(),
        "baselines": {
            "scalability_pipeline_tosses10_pre_pr_seconds": PRE_PR_PIPELINE_SECONDS
        },
        "benchmarks": records,
        "errors": errors,
    }
    if not args.smoke:
        bitmask = next(
            (
                record["seconds"]
                for record in records
                if record["name"] == "scalability_pipeline"
                and record["backend"] == "bitmask"
            ),
            None,
        )
        if bitmask:
            payload["derived"] = {
                "pipeline_speedup_vs_pre_pr": round(
                    PRE_PR_PIPELINE_SECONDS / bitmask, 2
                )
            }
    text = write_bench_json(args.output, payload)
    print(text)
    if errors:
        print(f"\n{len(errors)} benchmark(s) FAILED", file=sys.stderr)
        for error in errors:
            print(error, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
