"""Bounded generation of languages ``L(Phi)``.

Proposition 3 and Theorems 8/9 quantify over all formulas of a language;
the verifiers make this executable by generating every formula of ``L(Phi)``
up to a nesting depth (with a hard cap on count), optionally including the
probability and temporal operators, and -- for "sufficient richness" -- one
primitive proposition per global state.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from ..core.facts import Fact
from ..core.measurability import sufficient_richness_propositions
from ..core.model import System
from ..probability.fractionutil import FractionLike, as_fraction
from .syntax import (
    And,
    Formula,
    Knows,
    Next,
    Not,
    PrAtLeast,
    Prop,
    Until,
)


def generate_language(
    primitives: Sequence[str],
    depth: int,
    agents: Sequence[int] = (),
    alphas: Sequence[FractionLike] = (),
    include_temporal: bool = True,
    max_formulas: int = 5_000,
) -> List[Formula]:
    """Every formula of ``L(Phi)`` up to ``depth``, capped at ``max_formulas``.

    Closure follows the paper exactly: conjunction, negation, ``K_i``,
    ``Pr_i(.) >= alpha`` (for the supplied thresholds), *next* and *until*.
    Generation is level-by-level; binary operators pair the previous level
    against depth-0 formulas to keep growth polynomial rather than doubly
    exponential (the verifiers need coverage, not every syntactic variant).
    """
    level_zero: List[Formula] = [Prop(name) for name in primitives]
    formulas: List[Formula] = list(level_zero)
    previous: List[Formula] = list(level_zero)
    thresholds = [as_fraction(alpha) for alpha in alphas]
    for _ in range(depth):
        fresh: List[Formula] = []
        for formula in previous:
            fresh.append(Not(formula))
            for agent in agents:
                fresh.append(Knows(agent, formula))
                for alpha in thresholds:
                    fresh.append(PrAtLeast(agent, formula, alpha))
            if include_temporal:
                fresh.append(Next(formula))
            for base in level_zero:
                fresh.append(And(formula, base))
                if include_temporal:
                    fresh.append(Until(formula, base))
        seen = set(formulas)
        deduplicated = [formula for formula in fresh if formula not in seen]
        formulas.extend(deduplicated)
        previous = deduplicated
        if len(formulas) >= max_formulas:
            return formulas[:max_formulas]
    return formulas


def state_generated_valuation(system: System) -> Dict[str, Fact]:
    """A sufficiently rich, state-generated valuation for ``system``.

    One primitive proposition per global state (Section 5's sufficient
    richness condition); every proposition is trivially a fact about the
    global state, so any language over this valuation is state-generated.
    """
    return sufficient_richness_propositions(system)


def boolean_closure_extensions(
    base_extensions: Iterable[frozenset], universe: frozenset, cap: int = 10_000
) -> List[frozenset]:
    """Close a family of extensions under complement and intersection.

    Works at the level of point sets rather than syntax; used where a
    theorem quantifies over "all facts expressible from these primitives"
    and only extensions matter.
    """
    closed: List[frozenset] = []
    seen: set = set()

    def add(extension: frozenset) -> None:
        if extension not in seen:
            seen.add(extension)
            closed.append(extension)

    for extension in base_extensions:
        add(frozenset(extension))
    changed = True
    while changed and len(closed) < cap:
        changed = False
        for extension in list(closed):
            if len(closed) >= cap:
                return closed[:cap]
            complement = universe - extension
            if complement not in seen:
                add(complement)
                changed = True
        snapshot = list(closed)
        for index, left in enumerate(snapshot):
            for right in snapshot[index + 1 :]:
                if len(closed) >= cap:
                    return closed[:cap]
                meet = left & right
                if meet not in seen:
                    add(meet)
                    changed = True
    return closed[:cap]
