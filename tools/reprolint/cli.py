"""Command-line interface: ``python -m tools.reprolint [paths...]``."""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .engine import lint_paths
from .registry import all_rules, get_rule


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based invariant checker for the Halpern & Tuttle "
            "reproduction: exact probability arithmetic, package layering, "
            "and paper traceability."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint (e.g. src/repro)"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit violations as a JSON array instead of path:line:col lines",
    )
    parser.add_argument(
        "--explain",
        metavar="RL00X",
        help="print the rationale for one rule (with the paper section it protects) and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rule ids and titles and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.explain:
        try:
            rule = get_rule(args.explain.strip().upper())
        except KeyError as exc:
            print(str(exc.args[0]), file=sys.stderr)
            return 2
        print(f"{rule.rule_id}: {rule.title}")
        print()
        print(rule.rationale)
        return 0

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.title}")
        return 0

    if not args.paths:
        parser.error("no paths given (try: python -m tools.reprolint src/repro)")

    violations, errors = lint_paths(args.paths)

    if errors:
        for error in errors:
            print(error.render(), file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps([v.as_dict() for v in violations], indent=2))
    else:
        for violation in violations:
            print(violation.render())
        if violations:
            print(
                f"reprolint: {len(violations)} violation(s) "
                f"(suppress a line with '# reprolint: disable=<RULE>')",
                file=sys.stderr,
            )
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
