"""E09 -- Section 7's ten-toss asynchronous coin.

Paper claims: for the clockless p1, "the most recent toss landed heads" has
inner measure 1/2**10 and outer measure 1 - 1/2**10 (over the post-toss
points); betting against the clocked p2 gives exactly 1/2 at every time.
The paper's own inner bound silently ignores the pre-toss root point, where
the fact is vacuously false; we report both readings.
"""

from fractions import Fraction

from repro.core import (
    PostAssignment,
    ProbabilityAssignment,
    opponent_assignment,
)
from repro.examples_lib import repeated_coin_system
from repro.reporting import print_table

TOSSES = 10


def run_experiment():
    example = repeated_coin_system(TOSSES)
    phi = example.most_recent_heads
    anchor = next(iter(example.post_toss_points))
    restricted = ProbabilityAssignment(example.post_toss_assignment())
    paper_interval = restricted.probability_interval(0, anchor, phi)
    root_anchor = example.psys.system.points_at_time(0)[0]
    full_post = ProbabilityAssignment(PostAssignment(example.psys))
    root_inclusive = full_post.probability_interval(0, root_anchor, phi)
    against = opponent_assignment(example.psys, 1)
    one_run = example.psys.system.runs[0]
    against_p2 = {
        against.probability(0, point, phi)
        for point in one_run.points()
        if point.time >= 1  # S^2 is uniform per time slice; one point each
    }
    return paper_interval, root_inclusive, sorted(against_p2)


def test_e09_ten_toss_coin(benchmark):
    paper_interval, root_inclusive, against_p2 = benchmark(run_experiment)
    low = Fraction(1, 2**TOSSES)
    print_table(
        "E09  ten tosses, clockless p1: inner/outer measures of 'latest heads'",
        ["reading", "paper", "measured"],
        [
            ("post-toss points (paper's)", f"[{low}, {1 - low}]", paper_interval),
            ("root included", f"[0, {1 - low}]", root_inclusive),
            ("vs clocked p2 (S^2)", "1/2 at every time", against_p2),
        ],
    )
    assert paper_interval == (low, 1 - low)
    assert root_inclusive == (Fraction(0), 1 - low)
    assert against_p2 == [Fraction(1, 2)]
