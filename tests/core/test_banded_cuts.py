"""Partially-synchronous banded cuts (the Section 7 sketch)."""

from fractions import Fraction

import pytest

from repro.core import (
    PostAssignment,
    enumerate_banded_cuts,
    enumerate_horizontal_cuts,
    enumerate_point_cuts,
    interval_over_banded_cuts,
    interval_over_cuts,
)
from repro.examples_lib import repeated_coin_system


@pytest.fixture(scope="module")
def example():
    return repeated_coin_system(3)


@pytest.fixture(scope="module")
def region(example):
    # p1's post-toss region: every point at times 1..3 (p1 is blind)
    return frozenset(example.post_toss_points)


class TestEnumeration:
    def test_width_zero_cuts_are_horizontal(self, region):
        banded = {frozenset(cut) for cut in enumerate_banded_cuts(region, 0)}
        for cut in banded:
            assert len({point.time for point in cut}) == 1
        horizontal = {frozenset(cut) for cut in enumerate_horizontal_cuts(region)}
        # every horizontal slice here has one point per run -> it is a cut
        assert horizontal <= banded | horizontal
        assert banded == horizontal

    def test_full_width_recovers_pts(self, region):
        span = max(point.time for point in region) - min(point.time for point in region)
        banded = {frozenset(cut) for cut in enumerate_banded_cuts(region, span)}
        pts = {frozenset(cut) for cut in enumerate_point_cuts(region)}
        assert banded == pts

    def test_width_monotone(self, region):
        counts = [
            sum(1 for _ in enumerate_banded_cuts(region, width)) for width in range(3)
        ]
        assert counts == sorted(counts)

    def test_band_constraint_enforced(self, region):
        for cut in enumerate_banded_cuts(region, 1):
            times = [point.time for point in cut]
            assert max(times) - min(times) <= 1


class TestIntervals:
    def test_width_zero_gives_half(self, example):
        # synchronised test times: the probability is exactly 1/2
        post = PostAssignment(example.psys)
        anchor = next(iter(example.post_toss_points))

        class PostTossRegion:
            def sample_space(self, agent, point):
                return frozenset(example.post_toss_points)

        region_of = PostTossRegion()
        interval = interval_over_banded_cuts(
            example.psys, region_of, 0, anchor, example.most_recent_heads, width=0
        )
        assert interval == (Fraction(1, 2), Fraction(1, 2))

    def test_interval_grows_with_width(self, example):
        anchor = next(iter(example.post_toss_points))

        class PostTossRegion:
            def sample_space(self, agent, point):
                return frozenset(example.post_toss_points)

        region_of = PostTossRegion()
        intervals = [
            interval_over_banded_cuts(
                example.psys, region_of, 0, anchor, example.most_recent_heads, width
            )
            for width in range(3)
        ]
        for narrow, wide in zip(intervals, intervals[1:]):
            assert wide[0] <= narrow[0] and narrow[1] <= wide[1]

    def test_max_width_matches_pts_class(self, example):
        anchor = next(iter(example.post_toss_points))

        class PostTossRegion:
            def sample_space(self, agent, point):
                return frozenset(example.post_toss_points)

        region_of = PostTossRegion()
        banded = interval_over_banded_cuts(
            example.psys, region_of, 0, anchor, example.most_recent_heads, width=2
        )
        pts = interval_over_cuts(
            example.psys, region_of, 0, anchor, example.most_recent_heads, "pts"
        )
        assert banded == pts
        assert banded == (Fraction(1, 8), Fraction(7, 8))
