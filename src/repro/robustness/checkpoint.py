"""Checkpoint/resume for the Proposition 11 guarantee sweeps.

A long sweep should survive being killed: every completed row streams to
an append-only JSONL checkpoint the moment it is computed, and a resumed
run loads the file, skips the finished tasks, and still returns the full
row list in the deterministic serial order.  Rows stay **exact** on
disk: every :class:`fractions.Fraction` is encoded as its ``"p/q"``
string via :func:`repro.reporting.json_ready` and decoded back with
:func:`repro.reporting.fraction_from_json`, so a resumed sweep is
bit-for-bit identical to an uninterrupted one.

Each record also carries its task's *fingerprint* -- the sweep
coordinates (protocol, messengers, loss, epsilon) of Section 8 --
and resuming against a task list whose fingerprints disagree raises
:class:`~repro.errors.CheckpointError` instead of silently splicing rows
from two different sweeps.

A process killed mid-write leaves a truncated final line; loading
tolerates exactly that (the undecodable tail is ignored and its task
re-run) while any *well-formed but wrong* record stays a hard error.
"""

from __future__ import annotations

import json
import os
from contextlib import ExitStack
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence

from ..attack.sweep import (
    Builder,
    SweepRow,
    SweepTask,
    row_provenance_derivation,
    sweep_row_from_attack,
    sweep_row_of,
    sweep_tasks,
    task_fingerprint,
)
from ..errors import CheckpointError
from ..obs.audit import AuditBundleWriter
from ..probability.bitset import get_default_backend, use_backend
from ..probability.fractionutil import FractionLike
from ..reporting import fraction_from_json, json_ready
from .engine import RetryPolicy, run_tasks
from .validate import validate_system

__all__ = [
    "SweepCheckpoint",
    "default_audit_path",
    "resume_guarantee_sweep",
    "robust_guarantee_sweep",
    "row_from_record",
    "row_to_record",
    "strict_sweep_row_of",
    "task_fingerprint",
]


def _identity_fingerprint(fingerprint: Dict[str, object]) -> Dict[str, object]:
    """A fingerprint's identity fields: everything except ``backend``."""
    return {key: value for key, value in fingerprint.items() if key != "backend"}


def row_to_record(index: int, task: SweepTask, row: SweepRow) -> Dict[str, object]:
    """One checkpoint record: task position, fingerprint, and exact row.

    Exact. Every probability in the record is a Fraction string;
    round-tripping through :func:`row_from_record` is lossless.
    """
    return {
        "index": index,
        "task": task_fingerprint(task),
        "row": json_ready(row),
    }


def row_from_record(record: Dict[str, object]) -> SweepRow:
    """Rebuild the exact :class:`SweepRow` a record encodes.

    Exact. The inverse of :func:`row_to_record`: Fraction strings come
    back as the same Fractions, bit for bit.
    """
    row = record["row"]
    return SweepRow(
        protocol=row["protocol"],
        messengers=int(row["messengers"]),
        loss=fraction_from_json(row["loss"]),
        run_level=fraction_from_json(row["run_level"]),
        post_threshold=fraction_from_json(row["post_threshold"]),
        achieves_99_post=bool(row["achieves_99_post"]),
    )


class SweepCheckpoint:
    """An append-only JSONL checkpoint of completed sweep rows.

    ``append`` writes one record per completed task and fsyncs, so a
    kill at any instant loses at most the row being written -- and only
    as a truncated final line, which ``load`` tolerates.  ``load``
    returns the completed ``index -> SweepRow`` table after verifying
    every record's fingerprint against the resuming task list.
    """

    def __init__(self, path) -> None:
        self.path = os.fspath(path)

    def append(self, index: int, task: SweepTask, row: SweepRow) -> None:
        """Durably record one completed row."""
        line = json.dumps(row_to_record(index, task, row), sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load(self, tasks: Sequence[SweepTask]) -> Dict[int, SweepRow]:
        """The completed rows on disk, keyed by task index.

        A missing file means a fresh sweep (empty table).  A final line
        that does not decode as JSON is the half-written tail of a killed
        run and is skipped -- its task simply re-runs.  A record that
        decodes but names an out-of-range index or a fingerprint
        different from ``tasks`` raises :class:`CheckpointError`: the
        checkpoint belongs to a different sweep.
        """
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except FileNotFoundError:
            return {}
        completed: Dict[int, SweepRow] = {}
        for position, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # The half-written tail of a killed run.  Anything after
                # it (there should be nothing) is unreliable too.
                break
            try:
                index = int(record["index"])
                fingerprint = record["task"]
                row = row_from_record(record)
            except (KeyError, TypeError, ValueError) as error:
                raise CheckpointError(
                    f"checkpoint line {position + 1} is malformed: {error}"
                ) from error
            if not 0 <= index < len(tasks):
                raise CheckpointError(
                    f"checkpoint line {position + 1} names task {index}, but the "
                    f"sweep has {len(tasks)} tasks"
                )
            expected = task_fingerprint(tasks[index])
            if _identity_fingerprint(fingerprint) != _identity_fingerprint(expected):
                raise CheckpointError(
                    f"checkpoint line {position + 1} was computed for "
                    f"{fingerprint!r}, but task {index} of this sweep is "
                    f"{expected!r}; refusing to splice rows from different sweeps"
                )
            completed[index] = row
        return completed


class _BackendBoundTask:
    """A task function bound to run under a fixed measure backend.

    Worker processes start with the module default backend
    (``"bitmask"``), so the engine's task callable must carry the
    caller's choice across the process boundary itself.  A class rather
    than ``functools.partial`` because the engine's ``wants_context``
    protocol is an attribute probe on the callable -- a partial would
    hide the wrapped function's opt-in and silently drop the
    :class:`~repro.robustness.engine.TaskContext` argument.  Instances
    pickle by value (function by reference, backend as a string).
    """

    __slots__ = ("function", "backend")

    def __init__(self, function: Callable, backend: str) -> None:
        self.function = function
        self.backend = backend

    @property
    def wants_context(self) -> bool:
        return bool(getattr(self.function, "wants_context", False))

    def __call__(self, task, *args, **kwargs):
        with use_backend(self.backend):
            return self.function(task, *args, **kwargs)


def strict_sweep_row_of(task: SweepTask) -> SweepRow:
    """:func:`~repro.attack.sweep.sweep_row_of` with invariant validation.

    Builds the attack system, runs
    :func:`repro.robustness.validate.validate_system` on it (raising
    :class:`~repro.errors.ValidationError` with every violation if the
    Section 3-5 invariants fail), then computes the row from the
    already-built system.  Module-level so it ships to worker processes.
    """
    _name, builder, messengers, loss, _epsilon = task
    attack = builder(messengers, loss)
    validate_system(attack.psys).raise_if_failed()
    return sweep_row_from_attack(task, attack)


def default_audit_path(checkpoint_path) -> str:
    """Where a sweep's audit bundle lives when the caller names only the
    checkpoint: right alongside it, with an ``.audit`` suffix."""
    return os.fspath(checkpoint_path) + ".audit"


def _audit_append(
    writer: AuditBundleWriter, index: int, task: SweepTask, row: SweepRow
) -> None:
    """Chain one completed row into the sweep's audit bundle.

    Rebuilds the task's attack system in the parent process and
    re-derives its ``post_threshold`` at the witness point
    (:func:`repro.attack.sweep.row_provenance_derivation` -- the
    Section 5 inner-measure evidence behind the Section 8 row), then
    appends the Merkle leaf over (task fingerprint, exact row payload,
    derivation root fingerprint, index).  Rebuilding is deliberate: the
    derivation must come from the *parent's* deterministic replay, not
    from trusting whatever a (possibly remote, possibly faulty) worker
    claims -- that is what makes the bundle evidence.  The rebuild cost
    is why ``audit`` defaults off; ``BENCH_10.json`` pins the overhead.
    """
    _name, builder, messengers, loss, _epsilon = task
    attack = builder(messengers, loss)
    derivation = row_provenance_derivation(attack)
    writer.append(index, task_fingerprint(task), json_ready(row), derivation)


def robust_guarantee_sweep(
    messenger_counts: Sequence[int],
    losses: Sequence[FractionLike],
    builders: Optional[Dict[str, Builder]] = None,
    epsilon: FractionLike = Fraction(99, 100),
    max_workers: Optional[int] = None,
    policy: Optional[RetryPolicy] = None,
    timeout: Optional[float] = None,
    checkpoint_path=None,
    strict: bool = False,
    task_function: Optional[Callable[[SweepTask], SweepRow]] = None,
    sleep=None,
    backend: Optional[str] = None,
    progress_every: Optional[int] = None,
    audit: bool = False,
    audit_path=None,
) -> List[SweepRow]:
    """The guarantee sweep of Section 8 on the fault-tolerant engine.

    Row-for-row identical to :func:`repro.attack.sweep.guarantee_sweep`
    (same task enumeration, same order, same exact Fractions), with
    bounded retries, worker-crash recovery and per-task ``timeout`` from
    :func:`repro.robustness.engine.run_tasks`.  With ``checkpoint_path``
    every completed row streams to a JSONL checkpoint and previously
    completed rows are loaded and skipped; ``strict=True`` validates
    every built system against the paper's structural invariants before
    measuring it.  ``task_function`` overrides the per-task callable
    (the chaos tests inject faults through it); ``sleep`` overrides the
    backoff sleeper.  ``backend`` runs every task -- in workers too,
    where the process default would otherwise apply -- under the named
    measure engine (``None``: the caller's process default); rows are
    backend-independent, so checkpoints resume across backends.
    ``progress_every`` emits a ``sweep_progress`` event every that many
    completed rows (see :func:`repro.robustness.engine.run_tasks`);
    pair it with a :class:`~repro.obs.trace.TraceRecorder` and tail the
    file with ``tools/reprotop`` for a live sweep monitor.

    ``audit=True`` (opt-in, default off; implied by an explicit
    ``audit_path``) additionally chains every completed row into a
    ``repro-audit/1`` Merkle bundle written alongside the checkpoint
    (``audit_path``, default ``<checkpoint>.audit``): each leaf binds
    the task fingerprint, the exact row payload, and the row's
    parent-recomputed threshold-derivation root, so
    ``tools/verifyaudit`` can certify the sweep -- including one that
    was chaos-killed and resumed -- without recomputing it.  Resuming
    continues the existing chain and *backfills* leaves for checkpoint
    rows whose audit records were lost to a torn tail, so bundle and
    checkpoint always end the run covering the same rows.  Auditing
    requires a ``checkpoint_path`` (the bundle cross-checks it) and
    never changes the returned rows.
    """
    tasks = sweep_tasks(messenger_counts, losses, builders, epsilon)
    if audit_path is not None:
        audit = True
    if audit and checkpoint_path is None:
        raise ValueError(
            "audit=True requires checkpoint_path: the audit bundle is "
            "verified against the checkpoint it shadows"
        )
    if audit and audit_path is None:
        audit_path = default_audit_path(checkpoint_path)
    if task_function is None:
        task_function = strict_sweep_row_of if strict else sweep_row_of
    active = backend if backend is not None else get_default_backend()
    if backend is not None or active != "bitmask":
        # The default-on-default case stays unwrapped so the engine sees
        # the exact callables the chaos tests fingerprint.
        task_function = _BackendBoundTask(task_function, active)
    checkpoint = SweepCheckpoint(checkpoint_path) if checkpoint_path is not None else None
    keywords = {}
    if sleep is not None:
        keywords["sleep"] = sleep
    with ExitStack() as stack:
        if backend is not None:
            # Activate the engine in the parent too, so the fingerprints
            # streamed by on_result record the backend that actually
            # computed the rows (provenance), not the ambient default.
            stack.enter_context(use_backend(backend))
        completed = checkpoint.load(tasks) if checkpoint is not None else {}
        writer = None
        if audit:
            writer = AuditBundleWriter(audit_path)
            # Backfill: a kill can land between the checkpoint append and
            # the audit append, leaving a row the resumed engine will not
            # re-run (the checkpoint has it) but the chain never saw.
            for index in sorted(set(completed) - set(writer.leaf_indexes())):
                _audit_append(writer, index, tasks[index], completed[index])
        on_result = None
        if checkpoint is not None:
            def on_result(index: int, row: SweepRow) -> None:
                checkpoint.append(index, tasks[index], row)
                if writer is not None:
                    _audit_append(writer, index, tasks[index], row)
        return run_tasks(
            task_function,
            tasks,
            max_workers=max_workers,
            policy=policy,
            timeout=timeout,
            completed=completed,
            on_result=on_result,
            progress_every=progress_every,
            **keywords,
        )


def resume_guarantee_sweep(
    checkpoint_path,
    messenger_counts: Sequence[int],
    losses: Sequence[FractionLike],
    builders: Optional[Dict[str, Builder]] = None,
    epsilon: FractionLike = Fraction(99, 100),
    max_workers: Optional[int] = None,
    policy: Optional[RetryPolicy] = None,
    timeout: Optional[float] = None,
    strict: bool = False,
    task_function: Optional[Callable[[SweepTask], SweepRow]] = None,
    sleep=None,
    backend: Optional[str] = None,
    progress_every: Optional[int] = None,
    audit: bool = False,
    audit_path=None,
) -> List[SweepRow]:
    """Resume a checkpointed sweep, re-running only its incomplete tasks.

    A convenience spelling of :func:`robust_guarantee_sweep` with a
    mandatory checkpoint: rows already in the JSONL file (fingerprints
    verified against this sweep's task list, Section 8 coordinates) are
    returned verbatim in their deterministic positions, never re-run.
    The checkpoint's recorded backend is provenance only -- resuming
    under a different ``backend`` is sound because rows are exact
    Fractions on every engine.  ``audit=True`` resumes (or starts) the
    sweep's ``repro-audit/1`` Merkle bundle as well, backfilling any
    leaves a kill tore away; see :func:`robust_guarantee_sweep`.
    """
    return robust_guarantee_sweep(
        messenger_counts,
        losses,
        builders=builders,
        epsilon=epsilon,
        max_workers=max_workers,
        policy=policy,
        timeout=timeout,
        checkpoint_path=checkpoint_path,
        strict=strict,
        task_function=task_function,
        sleep=sleep,
        backend=backend,
        progress_every=progress_every,
        audit=audit,
        audit_path=audit_path,
    )
