"""Fault-tolerant task engine behind the robust guarantee sweeps.

The parallel runner of :mod:`repro.attack.parallel` treats the process
pool as all-or-nothing: any pool-level failure throws away every
completed result and re-runs the whole sweep serially.  This engine
replaces that fallback for production-shaped workloads with per-task
fault tolerance:

* **Bounded retries with deterministic backoff.**  Each task gets up to
  :attr:`RetryPolicy.max_attempts` tries; the delay before a retry is an
  exponential backoff with *seeded* jitter (:meth:`RetryPolicy.backoff_delay`
  is a pure function of ``(seed, task index, attempt)``), so two runs of
  the same sweep sleep the same amounts.  Delays only affect timing --
  results carry no wall-clock dependence whatsoever.
* **Worker-crash recovery.**  A dead worker breaks the whole
  :class:`~concurrent.futures.ProcessPoolExecutor`; the engine harvests
  every result that finished before the crash, requeues only the
  *incomplete* tasks onto a fresh pool, and keeps going.
* **Per-task timeouts.**  A task that exceeds ``timeout`` seconds costs
  one attempt; a stuck worker is abandoned with its pool and the task is
  requeued elsewhere.
* **Terminal errors that name the task.**  When retries run out the
  engine raises :class:`~repro.errors.RetryExhaustedError` (or
  :class:`~repro.errors.TaskTimeoutError` if the final attempt timed
  out) carrying the task's index, the task itself, and the full
  chronological attempt log.

Task exceptions never travel through the pool as raised exceptions: the
worker wraps them in a :class:`_TaskOutcome` envelope, so any exception
that *does* surface from a future is pool infrastructure by construction
(see :data:`POOL_INFRASTRUCTURE_ERRORS`) and degrades to in-process
execution without re-running completed tasks.

Results are returned in the deterministic serial task order regardless
of which worker finished first, which keeps the Proposition 11 sweep
rows row-for-row identical to the serial sweep.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from pickle import PicklingError
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, TypeVar

from ..errors import RetryExhaustedError, TaskTimeoutError
from ..obs.clock import monotonic
from ..obs.recorder import NULL_RECORDER, Recorder, get_recorder
from ..obs.snapshot import ObsDeltaCapture, merge_worker_delta

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None

__all__ = [
    "POOL_INFRASTRUCTURE_ERRORS",
    "RetryPolicy",
    "TaskAttempt",
    "TaskContext",
    "run_tasks",
]

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")

#: Errors that mean "this process pool cannot run the payload" rather
#: than "the task failed": pool creation refused by the OS or platform,
#: or a payload that cannot cross the process boundary (CPython raises
#: AttributeError/TypeError, not just PicklingError, for closures and
#: unpicklable state).  Because task exceptions come back inside the
#: :class:`_TaskOutcome` envelope, an exception of one of these types
#: raised *from a future* is infrastructure by construction; the engine
#: then finishes the incomplete tasks in-process.
POOL_INFRASTRUCTURE_ERRORS = (
    OSError,
    NotImplementedError,
    PicklingError,
    AttributeError,
    TypeError,
)

_MASK64 = (1 << 64) - 1


def _unit_jitter(seed: int, index: int, attempt: int) -> float:
    """A deterministic pseudo-uniform value in ``[0, 1)``.

    Deterministic. SplitMix64-style integer mixing of ``(seed, index,
    attempt)``: the jitter is a pure function of its arguments, so
    backoff schedules are reproducible run-over-run without any global
    random state.
    """
    value = (
        seed * 0x9E3779B97F4A7C15
        + index * 0xBF58476D1CE4E5B9
        + attempt * 0x94D049BB133111EB
        + 0xD6E8FEB86659FD93
    ) & _MASK64
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & _MASK64
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & _MASK64
    value ^= value >> 31
    return value / 2**64


@dataclass(frozen=True)
class TaskContext:
    """Identity of one execution attempt: which task, which retry.

    Passed as a second argument to task functions that opt in by setting
    a truthy ``wants_context`` attribute -- the hook the deterministic
    fault injectors of :mod:`repro.robustness.faults` use to key their
    schedules by ``(index, attempt)``.
    """

    index: int
    attempt: int


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    ``backoff_delay`` grows as ``base_delay * backoff_factor ** attempt``
    (capped at ``max_delay``) and is then shrunk by up to ``jitter`` of
    itself using seeded mixing -- never expanded -- so the configured
    ``max_delay`` stays an upper bound.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff_factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("a retry policy needs at least one attempt")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be nonnegative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must lie in [0, 1]")

    def backoff_delay(self, index: int, attempt: int) -> float:
        """Seconds to wait before retrying task ``index`` after ``attempt``.

        Deterministic. Same policy, same task, same attempt -> same
        delay; the float is a *schedule* (like ``time.sleep``), never a
        result, so it stays outside the exactness contracts.
        """
        raw = min(self.base_delay * self.backoff_factor**attempt, self.max_delay)
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        return raw * (1.0 - self.jitter * _unit_jitter(self.seed, index, attempt))


@dataclass(frozen=True)
class TaskAttempt:
    """One entry of a task's attempt log.

    ``outcome`` is ``"ok"``, ``"raised"``, ``"timeout"`` or
    ``"worker-lost"``; ``backoff`` is the delay scheduled before the
    *next* attempt (0.0 for the last or a successful one).
    """

    attempt: int
    outcome: str
    error: str = ""
    backoff: float = 0.0


#: Counter name bumped per failed attempt, keyed by its logged outcome.
_OUTCOME_COUNTERS = {
    "raised": "engine.raised",
    "timeout": "engine.timeouts",
    "worker-lost": "engine.worker_lost",
}


@dataclass(frozen=True)
class _TaskOutcome:
    """Worker-side envelope: task results and task errors are both data.

    ``error`` holds the original exception when it survives a pickle
    round-trip; otherwise ``error_text`` alone carries its worker-side
    description.  When the parent asked for telemetry shipping,
    ``obs_delta`` carries the attempt's observation delta
    (:class:`~repro.obs.snapshot.ObsDeltaCapture`) and ``worker`` the
    pid that computed it -- attached to failures too, so a raising
    attempt's partial work stays attributable.
    """

    ok: bool
    value: object = None
    error: Optional[BaseException] = None
    error_text: str = ""
    obs_delta: Optional[Dict] = None
    worker: Optional[int] = None


def _describe_error(error: BaseException) -> str:
    return f"{type(error).__name__}: {error}"


def _capture_failure(error: BaseException) -> _TaskOutcome:
    # A full round-trip check: some exceptions pickle fine but explode on
    # *unpickling* (e.g. a custom __init__ with required arguments), which
    # would surface in the parent as a bogus infrastructure error when the
    # future's result is deserialized.
    try:
        pickle.loads(pickle.dumps(error))
    except Exception:
        return _TaskOutcome(ok=False, error=None, error_text=_describe_error(error))
    return _TaskOutcome(ok=False, error=error, error_text=_describe_error(error))


def _call(function: Callable, task, index: int, attempt: int):
    """Invoke a task function, passing a :class:`TaskContext` on opt-in."""
    if getattr(function, "wants_context", False):
        return function(task, TaskContext(index=index, attempt=attempt))
    return function(task)


def _execute_task(payload: Tuple[Callable, object, int, int, bool]) -> _TaskOutcome:
    """Module-level worker entry point (picklable by reference).

    The trailing ``ship_obs`` payload flag is set by the parent exactly
    when it has a real recorder installed: the attempt then runs under
    an :class:`~repro.obs.snapshot.ObsDeltaCapture` and the envelope
    carries the observation delta home.  With the flag off the path is
    unchanged -- uninstrumented sweeps pay nothing.
    """
    function, task, index, attempt, ship_obs = payload
    capture = ObsDeltaCapture() if ship_obs else None
    try:
        if capture is not None:
            with capture:
                value = _call(function, task, index, attempt)
        else:
            value = _call(function, task, index, attempt)
    except Exception as error:
        outcome = _capture_failure(error)
    else:
        outcome = _TaskOutcome(ok=True, value=value)
    if capture is not None:
        outcome = replace(outcome, obs_delta=capture.delta, worker=capture.worker)
    return outcome


def _short_repr(value, limit: int = 200) -> str:
    text = repr(value)
    if len(text) > limit:
        text = text[: limit - 3] + "..."
    return text


def _maxrss_kb() -> Optional[int]:
    """Peak resident set size of this process, or ``None`` off-POSIX.

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; the value is
    reported raw as a gauge (timing-class data, never content), so the
    platform difference only affects how a human reads a dashboard.
    """
    if _resource is None:
        return None
    return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)


class _EngineState:
    """Book-keeping shared by the pool and serial execution paths."""

    def __init__(
        self,
        function: Callable,
        tasks: Sequence,
        policy: RetryPolicy,
        timeout: Optional[float],
        on_result: Optional[Callable[[int, object], None]],
        sleep: Callable[[float], None],
        progress_every: Optional[int] = None,
    ) -> None:
        self.function = function
        self.tasks = tasks
        self.policy = policy
        self.timeout = timeout
        self.on_result = on_result
        self._sleep = sleep
        self.progress_every = progress_every
        self.results: Dict[int, object] = {}
        self.attempt_log: Dict[int, List[TaskAttempt]] = {}
        self._next_attempt: Dict[int, int] = {}
        self.retries = 0
        self._started = monotonic()
        # Captured once per run: every attempt/retry/recovery observation
        # of this engine invocation reports to the same recorder.
        self.recorder: Recorder = get_recorder()
        # Workers only capture-and-ship deltas when someone is listening;
        # the identity check keeps the uninstrumented path byte-for-byte
        # what it was.
        self.ship_obs = self.recorder is not NULL_RECORDER

    def register(self, index: int) -> None:
        self._next_attempt[index] = 0

    def attempt_number(self, index: int) -> int:
        return self._next_attempt[index]

    def has_incomplete(self) -> bool:
        return bool(self._next_attempt)

    def incomplete_indices(self) -> List[int]:
        """Incomplete task indexes in deterministic (serial) order."""
        return sorted(self._next_attempt)

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            self._sleep(seconds)

    def emit_progress(self, force: bool = False) -> None:
        """One ``sweep_progress`` event, on the configured cadence.

        ``done``/``total``/``retries`` are deterministic content (the
        completion order the engine reports in is the deterministic
        harvest order); ``elapsed_seconds`` and the ``maxrss_kb`` gauge
        are timing, which ``tools/tracediff`` strips accordingly.
        """
        if not self.progress_every:
            return
        done = len(self.results)
        total = len(self.tasks)
        if not force and done % self.progress_every != 0:
            return
        maxrss = _maxrss_kb()
        if maxrss is not None:
            self.recorder.gauge("engine.maxrss_kb", maxrss)
        self.recorder.event(
            "sweep_progress",
            done=done,
            total=total,
            retries=self.retries,
            elapsed_seconds=round(monotonic() - self._started, 9),
            maxrss_kb=maxrss,
        )

    def record_success(self, index: int, attempt: int, value) -> None:
        self.attempt_log.setdefault(index, []).append(
            TaskAttempt(attempt=attempt, outcome="ok")
        )
        self.results[index] = value
        self._next_attempt.pop(index, None)
        recorder = self.recorder
        recorder.counter("engine.attempts")
        recorder.counter("engine.tasks_ok")
        recorder.event("task_attempt", index=index, attempt=attempt, outcome="ok")
        if self.on_result is not None:
            self.on_result(index, value)
        self.emit_progress(force=not self.has_incomplete())

    def record_failure(
        self,
        index: int,
        attempt: int,
        outcome: str,
        error_text: str,
        cause: Optional[BaseException] = None,
    ) -> float:
        """Count a failed attempt; schedule the retry or raise terminally.

        Returns the backoff delay to apply before the retry.  Raises
        :class:`TaskTimeoutError` when the final attempt timed out and
        :class:`RetryExhaustedError` for any other exhausted failure,
        both carrying the task identity and full attempt log.
        """
        exhausted = attempt + 1 >= self.policy.max_attempts
        backoff = 0.0 if exhausted else self.policy.backoff_delay(index, attempt)
        log = self.attempt_log.setdefault(index, [])
        log.append(
            TaskAttempt(attempt=attempt, outcome=outcome, error=error_text, backoff=backoff)
        )
        recorder = self.recorder
        recorder.counter("engine.attempts")
        recorder.counter(_OUTCOME_COUNTERS.get(outcome, f"engine.{outcome}"))
        recorder.event(
            "task_attempt",
            index=index,
            attempt=attempt,
            outcome=outcome,
            error=error_text,
            backoff=backoff,
        )
        if exhausted:
            recorder.event(
                "task_exhausted", index=index, attempts=len(log), outcome=outcome
            )
            message = (
                f"task {index} ({_short_repr(self.tasks[index])}) failed after "
                f"{len(log)} recorded attempt(s); last outcome: {outcome}"
                + (f" ({error_text})" if error_text else "")
            )
            details = {
                "task_index": index,
                "task": self.tasks[index],
                "attempts": tuple(log),
            }
            if outcome == "timeout":
                raise TaskTimeoutError(message, **details) from cause
            raise RetryExhaustedError(message, **details) from cause
        recorder.counter("engine.retries")
        self.retries += 1
        self._next_attempt[index] = attempt + 1
        return backoff

    def record_outcome(self, index: int, attempt: int, outcome: _TaskOutcome) -> float:
        """Fold a worker envelope into the state; returns any backoff.

        The shipped observation delta (if any) merges first, exactly
        once: the pool loop reads each future at most once, and killed
        workers never produced an envelope, so retries and kills cannot
        double-count a single attempt's work.
        """
        if outcome.obs_delta is not None:
            merge_worker_delta(
                self.recorder,
                outcome.obs_delta,
                worker=outcome.worker,
                index=index,
                attempt=attempt,
            )
        if outcome.ok:
            self.record_success(index, attempt, outcome.value)
            return 0.0
        return self.record_failure(
            index, attempt, "raised", outcome.error_text, cause=outcome.error
        )


def _run_pool(state: _EngineState, max_workers: Optional[int]) -> None:
    """Drive incomplete tasks through (a sequence of) process pools.

    Leaves any tasks it cannot place -- pool creation refused, payload
    unpicklable -- incomplete for the serial pass.  Completed results are
    never recomputed, no matter how many pools break underneath us.
    """
    pool: Optional[ProcessPoolExecutor] = None
    try:
        while state.has_incomplete():
            if pool is None:
                try:
                    pool = ProcessPoolExecutor(max_workers=max_workers)
                except POOL_INFRASTRUCTURE_ERRORS:
                    state.recorder.counter("engine.pool_fallbacks")
                    state.recorder.event(
                        "pool_fallback",
                        reason="process pool creation refused",
                        remaining=len(state.incomplete_indices()),
                    )
                    return
            pending = state.incomplete_indices()
            submitted: Dict[int, int] = {}
            futures = {}
            try:
                for index in pending:
                    attempt = state.attempt_number(index)
                    submitted[index] = attempt
                    futures[index] = pool.submit(
                        _execute_task,
                        (
                            state.function,
                            state.tasks[index],
                            index,
                            attempt,
                            state.ship_obs,
                        ),
                    )
            except (BrokenProcessPool, RuntimeError):
                # The pool died between rounds; tasks not yet submitted
                # have consumed no attempt.  Rebuild and retry them.
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
                pending = list(submitted)
            round_backoff = 0.0
            abandon = False
            fall_back = False
            handled = 0
            for position, index in enumerate(pending):
                future = futures[index]
                try:
                    outcome = future.result(timeout=state.timeout)
                except _FutureTimeoutError:
                    round_backoff = max(
                        round_backoff,
                        state.record_failure(
                            index,
                            submitted[index],
                            "timeout",
                            f"no result within {state.timeout}s",
                        ),
                    )
                    if future.cancel():
                        handled = position + 1
                        continue
                    # The worker is stuck mid-task: abandon this pool and
                    # requeue everything unresolved on a fresh one.
                    abandon = True
                    handled = position + 1
                    break
                except BrokenProcessPool:
                    round_backoff = max(
                        round_backoff,
                        state.record_failure(
                            index, submitted[index], "worker-lost", "process pool broke"
                        ),
                    )
                    abandon = True
                    handled = position + 1
                    break
                except POOL_INFRASTRUCTURE_ERRORS:
                    # Payload could not cross the process boundary; the
                    # envelope guarantees task errors never surface here.
                    fall_back = True
                    handled = position + 1
                    break
                round_backoff = max(
                    round_backoff, state.record_outcome(index, submitted[index], outcome)
                )
                handled = position + 1
            if abandon or fall_back:
                # Harvest whatever finished before the pool went down.
                # Only tasks whose worker actually died (BrokenProcessPool)
                # are charged a lost attempt; tasks merely queued or mid-
                # flight on a healthy worker of an abandoned pool never
                # failed and are requeued free of charge.
                for index in pending[handled:]:
                    future = futures[index]
                    try:
                        outcome = future.result(timeout=0)
                    except _FutureTimeoutError:
                        continue
                    except BrokenProcessPool:
                        round_backoff = max(
                            round_backoff,
                            state.record_failure(
                                index,
                                submitted[index],
                                "worker-lost",
                                "worker died before reporting a result",
                            ),
                        )
                    except POOL_INFRASTRUCTURE_ERRORS:
                        fall_back = True
                    else:
                        round_backoff = max(
                            round_backoff,
                            state.record_outcome(index, submitted[index], outcome),
                        )
                if pool is not None:
                    pool.shutdown(wait=False, cancel_futures=True)
                pool = None
                if not fall_back and state.has_incomplete():
                    state.recorder.counter("engine.pool_recoveries")
                    state.recorder.event(
                        "pool_recovery",
                        requeued=len(state.incomplete_indices()),
                    )
            state.sleep(round_backoff)
            if fall_back:
                state.recorder.counter("engine.pool_fallbacks")
                state.recorder.event(
                    "pool_fallback",
                    reason="payload could not cross the process boundary",
                    remaining=len(state.incomplete_indices()),
                )
                return
    finally:
        if pool is not None:
            # Never wait on workers here: when record_failure raises
            # terminally for a stuck task, waiting would block the raise
            # until the hung worker finishes -- exactly what the per-task
            # timeout exists to prevent.
            pool.shutdown(wait=False, cancel_futures=True)


def _run_serial(state: _EngineState) -> None:
    """Finish every incomplete task in-process, with the same retry rules."""
    for index in state.incomplete_indices():
        while index not in state.results:
            attempt = state.attempt_number(index)
            started = monotonic()
            try:
                value = _call(state.function, state.tasks[index], index, attempt)
            except Exception as error:
                state.sleep(
                    state.record_failure(
                        index, attempt, "raised", _describe_error(error), cause=error
                    )
                )
                continue
            elapsed = monotonic() - started
            if state.timeout is not None and elapsed > state.timeout:
                # In-process execution cannot preempt a task; overruns are
                # detected after the fact and still cost an attempt, so
                # serial and pool runs agree on what "timed out" means.
                state.sleep(
                    state.record_failure(
                        index,
                        attempt,
                        "timeout",
                        f"took {elapsed:.3f}s (> {state.timeout}s)",
                    )
                )
                continue
            state.record_success(index, attempt, value)


def run_tasks(
    function: Callable[..., _Result],
    tasks: Sequence[_Task],
    max_workers: Optional[int] = None,
    policy: Optional[RetryPolicy] = None,
    timeout: Optional[float] = None,
    completed: Optional[Mapping[int, _Result]] = None,
    on_result: Optional[Callable[[int, _Result], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
    progress_every: Optional[int] = None,
) -> List[_Result]:
    """Run ``function`` over ``tasks`` fault-tolerantly, in task order.

    Parameters
    ----------
    function:
        A picklable (module-level or picklable-dataclass) callable.  If it
        exposes a truthy ``wants_context`` attribute it is called as
        ``function(task, TaskContext(index, attempt))``.
    tasks:
        The deterministic task list; a task's identity is its index.
    max_workers:
        ``1`` forces in-process execution; ``None`` lets the pool choose.
    policy:
        The :class:`RetryPolicy`; defaults to three attempts.
    timeout:
        Per-task timeout in seconds (``None`` disables).
    completed:
        Already-computed ``index -> result`` entries (e.g. from a
        checkpoint); they are returned verbatim, never re-run, and not
        re-reported through ``on_result``.
    on_result:
        Callback invoked in the parent process as each task completes --
        the streaming hook checkpoints attach to.
    sleep:
        Injectable sleeper for the backoff delays (tests pass a stub, so
        chaos suites never wait on real clocks).
    progress_every:
        Emit a ``sweep_progress`` event (done/total, retry count, exact
        elapsed seconds from :mod:`repro.obs.clock`, and a ``maxrss_kb``
        gauge) after every ``progress_every`` completed tasks, plus once
        at the start and once at the end.  ``None`` (the default)
        disables progress telemetry; ``tools/reprotop`` tails these
        events from a live trace.

    Returns the results in the order of ``tasks`` -- identical to
    ``[function(task) for task in tasks]`` whenever that serial run would
    succeed.
    """
    task_list = list(tasks)
    if max_workers is not None and max_workers < 1:
        raise ValueError("run_tasks needs at least one worker")
    if progress_every is not None and progress_every < 1:
        raise ValueError("progress_every must be a positive cadence (or None)")
    state = _EngineState(
        function,
        task_list,
        policy or RetryPolicy(),
        timeout,
        on_result,
        sleep,
        progress_every=progress_every,
    )
    if completed:
        for index, value in completed.items():
            position = int(index)
            if 0 <= position < len(task_list):
                state.results[position] = value
    for index in range(len(task_list)):
        if index not in state.results:
            state.register(index)
    with state.recorder.span(
        "run_tasks", tasks=len(task_list), pending=len(state.incomplete_indices())
    ):
        # Opening event so a resumed sweep's monitor knows immediately
        # how much the checkpoint already covered.
        state.emit_progress(force=True)
        if max_workers != 1 and len(state.incomplete_indices()) > 1:
            _run_pool(state, max_workers)
        _run_serial(state)
    return [state.results[index] for index in range(len(task_list))]
