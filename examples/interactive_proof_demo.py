#!/usr/bin/env python3
"""Interactive proofs through the paper's lens (Section 9's application).

A prover convinces a verifier that x is a quadratic residue mod n without
revealing its square root.  Inside the paper's semantics: completeness and
soundness are per-adversary (per-tree) probability statements, and "the
verifier learns nothing about the witness" is a statement about the
verifier's knowledge -- its view distribution is identical whichever root
the honest prover holds.

Run:  python examples/interactive_proof_demo.py
"""

from fractions import Fraction

from repro.examples_lib import (
    completeness,
    zero_knowledge,
    qr_proof_system,
    quadratic_residues,
    soundness_error,
    square_roots,
    verifier_cannot_identify_witness,
    verifier_view_distribution,
    witness_indistinguishable,
)
from repro.probability import format_fraction


def main() -> None:
    n = 15
    print(f"Working over Z_{n}*: quadratic residues = {sorted(quadratic_residues(n))}")
    print(f"square roots of 4 mod {n}: {square_roots(4, n)}")
    print()

    print("rounds  completeness  soundness error  (= 2^-t)")
    for rounds in (1, 2, 3, 4):
        proof = qr_proof_system(rounds=rounds, randomness=(1, 14))
        print(
            f"{rounds:>6}  {str(completeness(proof)):>12}  "
            f"{format_fraction(soundness_error(proof)):>15}  "
            f"({format_fraction(Fraction(1, 2 ** rounds))})"
        )
    print()

    proof = qr_proof_system(rounds=1)
    print("Zero-knowledge flavour (witness indistinguishability):")
    print(f"  verifier view distributions identical for witnesses w and n-w: "
          f"{witness_indistinguishable(proof)}")
    print(f"  at every point the verifier considers the other witness possible: "
          f"{verifier_cannot_identify_witness(proof)}")
    print(f"  GMR simulator (no witness) reproduces the view exactly: "
          f"{zero_knowledge(proof)}")
    print()
    first, second = proof.honest_adversaries
    distribution = verifier_view_distribution(proof, first)
    print(f"  the common view distribution has {len(distribution)} transcripts, e.g.:")
    for view, probability in list(sorted(distribution.items(), key=repr))[:4]:
        print(f"    {format_fraction(probability):>6}  {view}")
    print()
    print("Soundness is only probabilistic: an accepting transcript is")
    print("consistent with a lucky cheater, which is why the verifier's")
    print("*knowledge* that x is a residue only holds with probability 1-2^-t.")


if __name__ == "__main__":
    main()
