"""Repository tooling that is *not* part of the installed ``repro`` package.

Two static-analysis tiers plus two artifact CLIs:

* ``tools.reprolint`` -- intra-file, syntactic invariant checker
  (``python -m tools.reprolint src/repro tools``).
* ``tools.reproflow`` -- whole-program dataflow analyzer: call graph +
  effect inference over ``src/repro`` (``python -m tools.reproflow
  src/repro``).
* ``tools.tracereport`` / ``tools.tracediff`` -- fold and diff the
  ``repro-trace/1`` / ``repro-explain/1`` / ``repro-bench/2`` artifacts.
"""

__all__ = []
