"""The shared point index and mask-based knowledge on ``System``."""

from repro.examples_lib import repeated_coin_system, three_agent_coin_system


def _example_system():
    return three_agent_coin_system().psys


class TestPointIndex:
    def test_positions_follow_points_order(self):
        system = _example_system().system
        index = system.point_index
        assert index.members == system.points
        assert [index.position(point) for point in system.points] == list(
            range(len(system.points))
        )

    def test_index_is_cached(self):
        system = _example_system().system
        assert system.point_index is system.point_index

    def test_probabilistic_system_shares_the_system_index(self):
        psys = _example_system()
        assert psys.point_index is psys.system.point_index


class TestKnowledgeMasks:
    def test_knowledge_mask_encodes_knowledge_set(self):
        system = _example_system().system
        index = system.point_index
        for agent in system.agents:
            for point in system.points:
                mask = system.knowledge_mask(agent, point)
                assert index.members_of(mask) == system.knowledge_set(agent, point)

    def test_class_masks_partition_the_point_universe(self):
        system = repeated_coin_system(3).psys.system
        index = system.point_index
        for agent in system.agents:
            masks = system.agent_class_masks(agent)
            union = 0
            for mask in masks:
                assert mask & union == 0, "information classes overlap"
                union |= mask
            assert union == index.full_mask

    def test_class_masks_match_local_state_classes(self):
        system = _example_system().system
        index = system.point_index
        for agent in system.agents:
            expected = {
                index.mask_of(points)
                for points in system.local_state_classes(agent).values()
            }
            assert set(system.agent_class_masks(agent)) == expected
