"""Agents (protocols) for the round-based simulator.

An agent is a *protocol* in the paper's sense: a deterministic-or-
probabilistic function of its local state.  Each round it receives an inbox
and returns a distribution over ``(new_state, outbox)`` actions -- the
probabilistic branches are its coin tosses, and everything else about its
behaviour must be a function of its local state (this is exactly the
locality that the betting game demands of strategies).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from fractions import Fraction
from typing import Callable, Hashable, List, Sequence, Tuple

from ..probability.distributions import Distribution, point_mass, weighted
from ..probability.fractionutil import ONE, FractionLike
from .messages import Message

AgentAction = Tuple[Hashable, Tuple[Message, ...]]
ActionDistribution = List[Tuple[Fraction, AgentAction]]


def act(state: Hashable, *messages: Message) -> AgentAction:
    """Build a deterministic action: new state plus outgoing messages."""
    return (state, tuple(messages))


def certainly(state: Hashable, *messages: Message) -> ActionDistribution:
    """The point-mass distribution on one action."""
    return [(ONE, act(state, *messages))]


def chance(
    branches: Sequence[Tuple[FractionLike, AgentAction]]
) -> ActionDistribution:
    """A probabilistic action (a coin toss inside the protocol)."""
    return [
        (probability, action)
        for probability, action in weighted(branches)  # type: ignore[misc]
    ]


class Agent(ABC):
    """A protocol for one agent of the system."""

    @abstractmethod
    def initial_state(self, input_value: Hashable) -> Hashable:
        """The agent's local state at time 0, given its input."""

    @abstractmethod
    def step(
        self, state: Hashable, inbox: Tuple[Message, ...], round_number: int
    ) -> ActionDistribution:
        """One round: return the distribution over (new state, outbox)."""


class FunctionAgent(Agent):
    """An agent assembled from two plain functions."""

    def __init__(
        self,
        initial: Callable[[Hashable], Hashable],
        step: Callable[[Hashable, Tuple[Message, ...], int], ActionDistribution],
    ) -> None:
        self._initial = initial
        self._step = step

    def initial_state(self, input_value: Hashable) -> Hashable:
        return self._initial(input_value)

    def step(
        self, state: Hashable, inbox: Tuple[Message, ...], round_number: int
    ) -> ActionDistribution:
        return self._step(state, inbox, round_number)


class IdleAgent(Agent):
    """An agent that never changes state and never sends -- the passive
    observers ``p_1`` and ``p_2`` of the coin-tossing examples."""

    def __init__(self, state: Hashable = "idle") -> None:
        self._state = state

    def initial_state(self, input_value: Hashable) -> Hashable:
        return self._state

    def step(
        self, state: Hashable, inbox: Tuple[Message, ...], round_number: int
    ) -> ActionDistribution:
        return certainly(state)


class CoinTossingAgent(Agent):
    """Tosses a (possibly biased) coin once at a given round and remembers
    the outcome; used throughout the paper's running examples."""

    def __init__(self, heads_probability: FractionLike, toss_round: int = 0) -> None:
        from ..probability.fractionutil import as_fraction

        self.heads_probability = as_fraction(heads_probability)
        self.toss_round = toss_round

    def initial_state(self, input_value: Hashable) -> Hashable:
        return "ready"

    def step(
        self, state: Hashable, inbox: Tuple[Message, ...], round_number: int
    ) -> ActionDistribution:
        if round_number == self.toss_round and state == "ready":
            return chance(
                [
                    (self.heads_probability, act("saw-heads")),
                    (1 - self.heads_probability, act("saw-tails")),
                ]
            )
        return certainly(state)


class RepeatedCoinTosser(Agent):
    """Tosses a fair coin every round, appending outcomes to its state --
    the Section 7 ten-toss example's ``p_3``."""

    def __init__(self, heads_probability: FractionLike = Fraction(1, 2)) -> None:
        from ..probability.fractionutil import as_fraction, check_probability

        self.heads_probability = check_probability(as_fraction(heads_probability))
        # both branch probabilities are fixed for the agent's lifetime, so
        # validate once here instead of re-running chance() every round
        self._tails_probability = ONE - self.heads_probability

    def initial_state(self, input_value: Hashable) -> Hashable:
        return ()

    def step(
        self, state: Hashable, inbox: Tuple[Message, ...], round_number: int
    ) -> ActionDistribution:
        outcomes: Tuple[str, ...] = state  # type: ignore[assignment]
        return [
            (self.heads_probability, act(outcomes + ("H",))),
            (self._tails_probability, act(outcomes + ("T",))),
        ]
