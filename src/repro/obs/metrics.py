"""In-memory metrics: counters, exact gauges, hierarchical timing spans.

:class:`MetricsRecorder` aggregates everything in plain dictionaries so
a caller can run a workload, take a :meth:`~MetricsRecorder.snapshot`,
and attach it to a report -- this is how ``benchmarks/collect.py`` puts
cache hit rates, gfp iteration counts and retry totals next to each
timing in ``BENCH_4.json``.

* **Counters** are monotonically increasing integers keyed by name.
  Events also bump a ``event:<kind>`` counter, so the chaos suite can
  equate the engine's ``task_attempt`` events with its attempt log.
* **Gauges** store the last value set, verbatim -- an exact
  :class:`fractions.Fraction` stays a ``Fraction`` until
  :func:`repro.reporting.json_ready` renders it as ``"p/q"``.
* **Spans** aggregate per hierarchical path: nested spans join their
  names with ``/`` (``guarantee_sweep/sweep_row``), and each path keeps
  count, total, min and max duration in seconds.

Durations come from :mod:`repro.obs.clock`; they are the only
nondeterministic values here and they never leave the observability
layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .clock import perf_counter
from .recorder import Recorder

__all__ = ["MetricsRecorder", "SpanStats"]


@dataclass
class SpanStats:
    """Aggregate timing of every completed span at one hierarchical path."""

    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = 0.0
    max_seconds: float = 0.0

    def add(self, seconds: float) -> None:
        if self.count == 0 or seconds < self.min_seconds:
            self.min_seconds = seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds
        self.count += 1
        self.total_seconds += seconds


class _MetricsSpan:
    """One live span: pushes its name on enter, aggregates on exit."""

    __slots__ = ("_recorder", "_name", "_path", "_started")

    def __init__(self, recorder: "MetricsRecorder", name: str) -> None:
        self._recorder = recorder
        self._name = name
        self._path: Optional[str] = None
        self._started = 0.0

    def __enter__(self) -> "_MetricsSpan":
        stack = self._recorder._stack
        stack.append(self._name)
        self._path = "/".join(stack)
        self._started = perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        elapsed = perf_counter() - self._started
        stack = self._recorder._stack
        if stack and stack[-1] == self._name:
            stack.pop()
        stats = self._recorder.spans.setdefault(self._path, SpanStats())
        stats.add(elapsed)
        return False


class MetricsRecorder(Recorder):
    """Aggregating recorder: counters + gauges + hierarchical span stats."""

    __slots__ = ("counters", "gauges", "spans", "_stack")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, object] = {}
        self.spans: Dict[str, SpanStats] = {}
        self._stack: List[str] = []

    def counter(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value) -> None:
        self.gauges[name] = value

    def event(self, kind: str, **fields) -> None:
        key = f"event:{kind}"
        self.counters[key] = self.counters.get(key, 0) + 1

    def span(self, name: str, **fields) -> _MetricsSpan:
        return _MetricsSpan(self, name)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready copy of every aggregate (sorted for stable diffs).

        Gauges may hold exact Fractions; run the snapshot through
        :func:`repro.reporting.json_ready` before serialising.
        """
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "spans": {
                path: {
                    "count": stats.count,
                    "total_seconds": stats.total_seconds,
                    "min_seconds": stats.min_seconds,
                    "max_seconds": stats.max_seconds,
                }
                for path, stats in sorted(self.spans.items())
            },
        }
