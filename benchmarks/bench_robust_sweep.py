"""Robustness -- overhead of the fault-tolerant engine over the plain sweep.

The fault-tolerant runner (:func:`repro.robustness.robust_guarantee_sweep`)
wraps every task in retry bookkeeping and, when checkpointing, serialises
each row to JSONL with an fsync.  This benchmark measures what that
machinery costs on a sweep that never faults, against the plain serial
:func:`repro.attack.sweep.guarantee_sweep` -- and asserts the two row
lists are identical, which is the engine's core contract.
"""

import os
import tempfile
from fractions import Fraction

from repro.attack import guarantee_sweep
from repro.robustness import robust_guarantee_sweep

COUNTS = [1, 2, 4]
LOSSES = [Fraction(1, 2)]


def run_serial():
    return guarantee_sweep(COUNTS, LOSSES)


def run_robust():
    return robust_guarantee_sweep(COUNTS, LOSSES, max_workers=1)


def run_robust_checkpointed():
    with tempfile.TemporaryDirectory() as tmp:
        return robust_guarantee_sweep(
            COUNTS,
            LOSSES,
            max_workers=1,
            checkpoint_path=os.path.join(tmp, "sweep.jsonl"),
        )


def test_serial_sweep_baseline(benchmark):
    rows = benchmark(run_serial)
    assert len(rows) == 9


def test_robust_sweep_overhead(benchmark):
    rows = benchmark(run_robust)
    assert rows == run_serial()


def test_robust_sweep_checkpoint_overhead(benchmark):
    rows = benchmark(run_robust_checkpointed)
    assert rows == run_serial()
