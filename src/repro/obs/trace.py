"""Structured JSONL tracing: schema ``repro-trace/1``.

A :class:`TraceRecorder` streams one JSON object per line to a file (or
any ``write()``-able), so a sweep, fixpoint, or chaos run leaves a
machine-readable account of *how* it computed its exact results.  The
``tools/tracereport`` CLI folds a trace back into the plain-text
summaries of :func:`repro.reporting.render_table`.

Schema ``repro-trace/1``
------------------------

Every record carries ``seq`` (a per-trace monotonic sequence number) and
``ts`` (seconds since the recorder was created, from the quarantined
:mod:`repro.obs.clock`).  The first record is always the header::

    {"seq": 0, "ts": 0.0, "type": "header", "schema": "repro-trace/1"}

followed by any number of:

``counter``
    ``{"type": "counter", "name": ..., "value": <int>}``
``gauge``
    ``{"type": "gauge", "name": ..., "value": ...}``
``event``
    ``{"type": "event", "kind": ..., "fields": {...}}``
``span-start`` / ``span-end``
    ``{"type": "span-start", "name": ..., "span": <id>, "parent": <id|null>,
    "fields": {...}}`` and ``{"type": "span-end", "name": ..., "span": <id>,
    "seconds": <float>}``; ``span`` ids pair the two records, ``parent``
    reconstructs the hierarchy.

Values are encoded with :func:`repro.reporting.json_ready`, so an exact
:class:`fractions.Fraction` is written as its ``"p/q"`` string -- a trace
never rounds a probability -- and can be decoded back with
:func:`repro.reporting.fraction_from_json`.

Like every recorder, tracing is observe-only: the instrumented code
cannot read anything back out of a trace, and an instrumented run
produces byte-identical results to an uninstrumented one.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..errors import TraceError
from ..reporting import json_ready
from .clock import perf_counter
from .recorder import Recorder

__all__ = ["TRACE_SCHEMA", "TraceRecorder", "read_trace"]

#: Identifier written into (and demanded from) every trace header.
TRACE_SCHEMA = "repro-trace/1"


class _TraceSpan:
    """One live span: emits ``span-start`` on enter, ``span-end`` on exit."""

    __slots__ = ("_recorder", "_name", "_fields", "_span_id", "_started")

    def __init__(self, recorder: "TraceRecorder", name: str, fields: Dict) -> None:
        self._recorder = recorder
        self._name = name
        self._fields = fields
        self._span_id = 0
        self._started = 0.0

    def __enter__(self) -> "_TraceSpan":
        recorder = self._recorder
        self._span_id = recorder._next_span_id
        recorder._next_span_id += 1
        parent = recorder._span_stack[-1] if recorder._span_stack else None
        recorder._span_stack.append(self._span_id)
        recorder._emit(
            {
                "type": "span-start",
                "name": self._name,
                "span": self._span_id,
                "parent": parent,
                "fields": self._fields,
            }
        )
        self._started = perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        elapsed = perf_counter() - self._started
        recorder = self._recorder
        if recorder._span_stack and recorder._span_stack[-1] == self._span_id:
            recorder._span_stack.pop()
        recorder._emit(
            {
                "type": "span-end",
                "name": self._name,
                "span": self._span_id,
                "seconds": round(elapsed, 9),
            }
        )
        return False


class TraceRecorder(Recorder):
    """Stream every observation as one JSON line (schema ``repro-trace/1``).

    ``destination`` is a path (the file is created/truncated and owned
    by the recorder -- :meth:`close` closes it) or any object with a
    ``write(str)`` method (borrowed -- :meth:`close` only flushes).
    """

    __slots__ = (
        "_handle",
        "_owns_handle",
        "_origin",
        "_seq",
        "_next_span_id",
        "_span_stack",
        "records_written",
    )

    def __init__(self, destination) -> None:
        if hasattr(destination, "write"):
            self._handle = destination
            self._owns_handle = False
        else:
            self._handle = open(destination, "w", encoding="utf-8")
            self._owns_handle = True
        self._seq = 0
        self._next_span_id = 1
        self._span_stack: List[int] = []
        #: Total records emitted, header included (monotonic).
        self.records_written = 0
        self._origin = perf_counter()
        self._emit({"type": "header", "schema": TRACE_SCHEMA})

    # -- plumbing --------------------------------------------------------

    def _emit(self, record: Dict) -> None:
        record["seq"] = self._seq
        record["ts"] = round(perf_counter() - self._origin, 9)
        self._seq += 1
        self.records_written += 1
        self._handle.write(json.dumps(json_ready(record), sort_keys=True) + "\n")

    # -- Recorder protocol ----------------------------------------------

    def counter(self, name: str, value: int = 1) -> None:
        self._emit({"type": "counter", "name": name, "value": value})

    def gauge(self, name: str, value) -> None:
        self._emit({"type": "gauge", "name": name, "value": value})

    def event(self, kind: str, **fields) -> None:
        self._emit({"type": "event", "kind": kind, "fields": fields})

    def span(self, name: str, **fields) -> _TraceSpan:
        return _TraceSpan(self, name, fields)

    def close(self) -> None:
        if self._owns_handle:
            if not self._handle.closed:
                self._handle.close()
        else:
            flush = getattr(self._handle, "flush", None)
            if flush is not None:
                flush()


def read_trace(source, strict: bool = True) -> List[Dict]:
    """Load the records of a JSONL trace file (or iterable of lines).

    A final line that does not decode as JSON is the half-written tail
    of a killed run and is dropped; an undecodable line *before* the end
    raises :class:`~repro.errors.TraceError`.  With ``strict=True`` the
    first record must be a ``repro-trace/1`` header.
    """
    if isinstance(source, (str, bytes)) or hasattr(source, "__fspath__"):
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    else:
        lines = [line.rstrip("\n") for line in source]
    records: List[Dict] = []
    bad_line: Optional[int] = None
    for position, line in enumerate(lines):
        if not line.strip():
            continue
        if bad_line is not None:
            raise TraceError(
                f"trace line {bad_line + 1} is not JSON but is not the final line"
            )
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            bad_line = position
            continue
        if not isinstance(record, dict):
            raise TraceError(f"trace line {position + 1} is not a JSON object")
        records.append(record)
    if strict:
        if not records:
            raise TraceError("trace is empty: no header record")
        header = records[0]
        if header.get("type") != "header" or header.get("schema") != TRACE_SCHEMA:
            raise TraceError(
                f"trace does not start with a {TRACE_SCHEMA!r} header: {header!r}"
            )
    return records
