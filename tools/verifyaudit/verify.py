"""The three verification tiers behind ``tools/verifyaudit``.

A ``repro-audit/1`` bundle (see :mod:`repro.obs.audit`) claims that a
Section 8 guarantee sweep produced certain rows with certain Section 5
derivations.  Verification replays the claim in three independently
useful tiers, cheapest first:

1. **Hash tier** (:func:`repro.obs.audit.verify_bundle`): every node
   payload hashes to the fingerprint it is filed under, every leaf hash
   matches its recorded content, every chain link extends the previous
   one from the genesis.  Pure arithmetic -- no model checking, no
   checkpoint needed.  A single flipped bit anywhere surfaces here.
2. **Checkpoint tier**: the bundle and the checkpoint it shadows must
   tell the same story -- every checkpoint row has a leaf whose exact
   ``"p/q"`` row payload matches byte for byte, and every leaf points
   back at a matching checkpoint row (task identity compared without
   the ``backend`` field, which is provenance, not identity).
3. **Replay tier**: for every (or ``sample`` evenly spaced) leaf, the
   attack system is rebuilt from the task fingerprint, the derivation
   DAG is decoded from the node table, and
   :func:`repro.logic.explain.audit_derivation` re-checks the recorded
   Section 5 evidence (cell sums, witness measures) against a freshly
   built model -- plus the cross-link that the row's ``post_threshold``
   equals the derivation's inner probability at the witness point.

The report is pure JSON (exact strings, no clocks); the CLI maps it to
exit codes 0 (clean), 1 (divergent), 2 (schema/unreadable).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.attack.sweep import DEFAULT_BUILDERS
from repro.core.standard import standard_assignments
from repro.errors import AuditError, ProvenanceError, ReproError
from repro.logic.explain import audit_derivation
from repro.logic.semantics import Model
from repro.obs.audit import AuditBundle, read_audit_bundle, verify_bundle
from repro.obs.derivstore import node_from_table
from repro.obs.provenance import Derivation
from repro.reporting import fraction_from_json

__all__ = [
    "REPORT_SCHEMA",
    "default_checkpoint_path",
    "load_checkpoint_records",
    "render_report",
    "select_leaves",
    "verify_audit",
]

#: Schema marker of the JSON report ``verifyaudit --json`` emits.
REPORT_SCHEMA = "repro-verifyaudit/1"

#: Task-fingerprint fields that identify a sweep cell.  ``backend`` is
#: deliberately absent: rows are backend-independent exact Fractions,
#: so a sweep checkpointed under one measure engine and audited under
#: another still cross-checks (the same reading
#: ``repro.robustness.checkpoint`` applies when resuming).
IDENTITY_FIELDS = ("protocol", "messengers", "loss", "epsilon")


def default_checkpoint_path(bundle_path: str) -> Optional[str]:
    """The checkpoint a bundle shadows, by the ``<checkpoint>.audit``
    naming convention -- ``None`` when the name does not follow it or
    the file does not exist (a serial, checkpoint-less audit)."""
    if not bundle_path.endswith(".audit"):
        return None
    candidate = bundle_path[: -len(".audit")]
    return candidate if os.path.exists(candidate) else None


def _identity(task: Dict) -> Tuple:
    return tuple(task.get(field) for field in IDENTITY_FIELDS)


def load_checkpoint_records(path: str) -> Tuple[List[Dict], List[str]]:
    """Checkpoint records plus any structural defects, tolerating only a
    torn final line (the same damage the sweep's own loader forgives)."""
    with open(path, "r", encoding="utf-8") as handle:
        raw = handle.read().splitlines()
    lines = [(i + 1, line) for i, line in enumerate(raw) if line.strip()]
    records: List[Dict] = []
    defects: List[str] = []
    for offset, (position, line) in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if offset == len(lines) - 1:
                break  # torn tail of a killed run: its task was re-run
            defects.append(
                f"checkpoint line {position} is not JSON but is not the "
                "final line"
            )
            break
        if (
            not isinstance(record, dict)
            or not isinstance(record.get("task"), dict)
            or not isinstance(record.get("row"), dict)
            or "index" not in record
        ):
            defects.append(f"checkpoint line {position} is malformed")
            continue
        records.append(record)
    return records, defects


def _cross_check_checkpoint(
    bundle: AuditBundle, records: List[Dict]
) -> List[str]:
    """Tier 2: the bundle and checkpoint must cover the same rows."""
    defects: List[str] = []
    leaves_by_index: Dict[int, Dict] = {}
    for leaf in bundle.leaves:
        leaves_by_index.setdefault(int(leaf["index"]), leaf)
    records_by_index: Dict[int, Dict] = {}
    for record in records:
        index = int(record["index"])
        earlier = records_by_index.get(index)
        if earlier is not None and earlier["row"] != record["row"]:
            defects.append(
                f"checkpoint has two disagreeing records for index {index}"
            )
        records_by_index[index] = record
    for index, record in sorted(records_by_index.items()):
        leaf = leaves_by_index.get(index)
        if leaf is None:
            defects.append(
                f"checkpoint row {index} has no audit leaf -- the chain "
                "does not cover the sweep"
            )
            continue
        if leaf["row"] != record["row"]:
            defects.append(
                f"index {index}: audit leaf row differs from checkpoint row"
            )
        if _identity(leaf["task"]) != _identity(record["task"]):
            defects.append(
                f"index {index}: audit leaf task identity "
                f"{_identity(leaf['task'])} differs from checkpoint "
                f"{_identity(record['task'])}"
            )
    for index in sorted(leaves_by_index):
        if index not in records_by_index:
            defects.append(
                f"audit leaf {index} has no checkpoint row -- the bundle "
                "claims a row the checkpoint never recorded"
            )
    return defects


def select_leaves(leaves: List[Dict], sample: Optional[int]) -> List[Dict]:
    """The leaves the replay tier will re-derive.

    ``sample=N`` picks N evenly spaced leaves in chain order --
    deterministic (no randomness is available or wanted in a verifier:
    two auditors running the same command must check the same leaves).
    ``None`` or ``N >= len`` selects everything.
    """
    if sample is None or sample >= len(leaves) or sample <= 0:
        return list(leaves)
    step = len(leaves) / sample
    chosen = sorted({int(position * step) for position in range(sample)})
    return [leaves[position] for position in chosen]


def _replay_leaves(bundle: AuditBundle, selected: List[Dict]) -> List[str]:
    """Tier 3: rebuild each task's system and re-audit its derivation."""
    defects: List[str] = []
    models: Dict[Tuple, Model] = {}
    for leaf in selected:
        index = int(leaf["index"])
        root_ref = leaf["root_ref"]
        if root_ref is None:
            defects.append(f"leaf {index}: no derivation to replay")
            continue
        task = leaf["task"]
        protocol = task.get("protocol")
        builder = DEFAULT_BUILDERS.get(protocol)
        if builder is None:
            defects.append(
                f"leaf {index}: unknown protocol {protocol!r}; replay "
                "knows only the default builders "
                f"{sorted(DEFAULT_BUILDERS)} (use --sample 0/--skip-replay "
                "for bundles from custom sweeps)"
            )
            continue
        key = _identity(task)
        try:
            model = models.get(key)
            if model is None:
                attack = builder(
                    int(task["messengers"]), fraction_from_json(task["loss"])
                )
                post = standard_assignments(attack.psys)["post"]
                model = Model(post, {"coord": attack.coordinated})
                models[key] = model
            root = node_from_table(bundle.nodes, root_ref)
            derivation = Derivation(
                assignment="post",
                formula=root.formula,
                point=root.point,
                root=root,
            )
            for defect in audit_derivation(model, derivation):
                defects.append(f"leaf {index}: {defect}")
            if root.rule == "pr-at-least" and "inner" in root.detail:
                inner = fraction_from_json(root.detail["inner"])
                threshold = fraction_from_json(leaf["row"]["post_threshold"])
                if inner != threshold:
                    defects.append(
                        f"leaf {index}: row post_threshold {threshold} != "
                        f"derivation inner probability {inner} at the "
                        "witness point"
                    )
        except (ProvenanceError, ReproError, KeyError, TypeError, ValueError) as error:
            defects.append(f"leaf {index}: replay failed: {error}")
    return defects


def verify_audit(
    bundle_path: str,
    checkpoint_path: Optional[str] = None,
    sample: Optional[int] = None,
    replay: bool = True,
) -> Dict:
    """Run every applicable tier; return the ``repro-verifyaudit/1`` report.

    Raises :class:`~repro.errors.AuditError` (schema tier -- exit 2 in
    the CLI) when the bundle itself does not parse; all *content*
    disagreements, including checkpoint mismatches and failed replays,
    are defects in the report (exit 1).
    """
    bundle = read_audit_bundle(bundle_path)
    hash_defects = verify_bundle(bundle)
    if checkpoint_path is None:
        checkpoint_path = default_checkpoint_path(bundle_path)
    checkpoint_defects: List[str] = []
    if checkpoint_path is not None:
        records, structural = load_checkpoint_records(checkpoint_path)
        checkpoint_defects.extend(structural)
        checkpoint_defects.extend(_cross_check_checkpoint(bundle, records))
    selected = select_leaves(bundle.leaves, sample) if replay else []
    replay_defects = _replay_leaves(bundle, selected) if replay else []
    defects = hash_defects + checkpoint_defects + replay_defects
    return {
        "schema": REPORT_SCHEMA,
        "bundle": os.fspath(bundle_path),
        "checkpoint": checkpoint_path,
        "genesis": bundle.genesis,
        "root": bundle.root,
        "leaves": len(bundle.leaves),
        "distinct_indexes": len(bundle.leaf_indexes()),
        "nodes": len(bundle.nodes),
        "replayed": len(selected),
        "hash_defects": hash_defects,
        "checkpoint_defects": checkpoint_defects,
        "replay_defects": replay_defects,
        "verdict": "clean" if not defects else "divergent",
    }


def render_report(report: Dict) -> str:
    """The human-readable form of a verification report."""
    lines = [
        f"bundle:     {report['bundle']}",
        f"checkpoint: {report['checkpoint'] or '(none)'}",
        f"root:       {report['root']}",
        f"leaves:     {report['leaves']} "
        f"({report['distinct_indexes']} distinct indexes, "
        f"{report['nodes']} derivation nodes)",
        f"replayed:   {report['replayed']} derivation(s)",
    ]
    for tier in ("hash_defects", "checkpoint_defects", "replay_defects"):
        for defect in report[tier]:
            lines.append(f"  DEFECT [{tier.split('_')[0]}] {defect}")
    lines.append(f"verdict:    {report['verdict'].upper()}")
    return "\n".join(lines)
