"""Audited sweeps: chained rows survive chaos, resume, and tamper."""

import json
import os
import shutil
import sys
from fractions import Fraction
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from repro.attack.sweep import guarantee_sweep, sweep_tasks
from repro.errors import RetryExhaustedError
from repro.obs import read_audit_bundle, verify_bundle
from repro.robustness import (
    FaultPlan,
    RetryPolicy,
    SweepCheckpoint,
    default_audit_path,
    resume_guarantee_sweep,
    robust_guarantee_sweep,
)
from repro.robustness.faults import FaultInjectingTask, InjectedFault

from tools.verifyaudit import verify_audit
from tools.verifyaudit.cli import main as verifyaudit_main

MESSENGERS = [1, 2]
LOSSES = [Fraction(1, 2)]

FAST = RetryPolicy(max_attempts=5, base_delay=0.0, jitter=0.0)


def _no_sleep(seconds):
    assert seconds >= 0


def _serial_rows():
    return guarantee_sweep(MESSENGERS, LOSSES)


def _export_artifact(path):
    """Copy a sweep artifact into CHAOS_ARTIFACT_DIR for the CI job."""
    target_dir = os.environ.get("CHAOS_ARTIFACT_DIR")
    if not target_dir:
        return
    os.makedirs(target_dir, exist_ok=True)
    shutil.copy(path, os.path.join(target_dir, os.path.basename(path)))


def _chaos_task(task, context):
    from repro.attack.sweep import sweep_row_of

    inner = FaultInjectingTask(
        inner=sweep_row_of,
        plan=FaultPlan.from_seed(
            seed=7, task_count=6, kinds=("raise", "kill"), rate=0.7
        ),
    )
    return inner(task, context)


_chaos_task.wants_context = True


def _dies_on_task_2(task, context):
    from repro.attack.sweep import sweep_row_of

    if context.index == 2:
        raise InjectedFault("simulated mid-sweep death on task 2")
    return sweep_row_of(task)


_dies_on_task_2.wants_context = True


class TestAuditedSweep:
    def test_audit_never_changes_the_rows(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        rows = robust_guarantee_sweep(
            MESSENGERS, LOSSES, max_workers=1, checkpoint_path=path, audit=True
        )
        assert rows == _serial_rows()

    def test_audit_requires_a_checkpoint(self):
        with pytest.raises(ValueError, match="checkpoint_path"):
            robust_guarantee_sweep(MESSENGERS, LOSSES, audit=True)

    def test_bundle_covers_every_checkpoint_row(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        robust_guarantee_sweep(
            MESSENGERS, LOSSES, max_workers=1, checkpoint_path=path, audit=True
        )
        bundle = read_audit_bundle(default_audit_path(path))
        assert verify_bundle(bundle) == []
        tasks = sweep_tasks(MESSENGERS, LOSSES)
        completed = SweepCheckpoint(path).load(tasks)
        assert bundle.leaf_indexes() == frozenset(completed)
        assert bundle.leaf_indexes() == frozenset(range(len(tasks)))

    def test_explicit_audit_path_implies_audit(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        audit_path = tmp_path / "elsewhere.audit"
        robust_guarantee_sweep(
            MESSENGERS,
            LOSSES,
            max_workers=1,
            checkpoint_path=path,
            audit_path=audit_path,
        )
        bundle = read_audit_bundle(audit_path)
        assert len(bundle.leaves) == len(sweep_tasks(MESSENGERS, LOSSES))


class TestChaosAuditedSweep:
    def test_chaos_kill_resume_bundle_verifies_clean(self, tmp_path):
        # The pinned acceptance scenario: kill a sweep mid-flight,
        # resume it, and verifyaudit must certify the merged bundle
        # (exit 0) -- hash, checkpoint, and replay tiers all clean.
        path = tmp_path / "killed.jsonl"
        with pytest.raises(RetryExhaustedError):
            robust_guarantee_sweep(
                MESSENGERS,
                LOSSES,
                max_workers=1,
                policy=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
                checkpoint_path=path,
                task_function=_dies_on_task_2,
                sleep=_no_sleep,
                audit=True,
            )
        rows = resume_guarantee_sweep(
            path, MESSENGERS, LOSSES, max_workers=1, audit=True
        )
        assert rows == _serial_rows()
        assert verifyaudit_main([str(default_audit_path(path))]) == 0
        _export_artifact(path)
        _export_artifact(default_audit_path(path))

    def test_chaos_sweep_audit_matches_serial_rows(self, tmp_path):
        plan = FaultPlan.from_seed(
            seed=7,
            task_count=len(sweep_tasks(MESSENGERS, LOSSES)),
            kinds=("raise", "kill"),
            rate=0.7,
        )
        assert plan.schedule, "seed 7 must actually schedule faults"
        path = tmp_path / "chaos.jsonl"
        rows = robust_guarantee_sweep(
            MESSENGERS,
            LOSSES,
            policy=FAST,
            checkpoint_path=path,
            task_function=_chaos_task,
            sleep=_no_sleep,
            audit=True,
        )
        assert rows == _serial_rows()
        report = verify_audit(str(default_audit_path(path)))
        assert report["verdict"] == "clean"

    def test_resume_backfills_leaves_the_kill_swallowed(self, tmp_path):
        # A kill can land between the checkpoint append and the audit
        # append: fake that gap by deleting the bundle's last leaf, then
        # resume.  The backfill loop must restore chain coverage.
        path = tmp_path / "sweep.jsonl"
        robust_guarantee_sweep(
            MESSENGERS, LOSSES, max_workers=1, checkpoint_path=path, audit=True
        )
        audit_path = default_audit_path(path)
        lines = open(audit_path).read().splitlines()
        last_leaf = max(
            position
            for position, line in enumerate(lines)
            if json.loads(line).get("type") == "leaf"
        )
        with open(audit_path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines[:last_leaf] + lines[last_leaf + 1 :]) + "\n")
        before = read_audit_bundle(audit_path)
        tasks = sweep_tasks(MESSENGERS, LOSSES)
        assert before.leaf_indexes() != frozenset(range(len(tasks)))
        rows = resume_guarantee_sweep(path, MESSENGERS, LOSSES, audit=True)
        assert rows == _serial_rows()
        after = read_audit_bundle(audit_path)
        assert after.leaf_indexes() == frozenset(range(len(tasks)))
        assert verify_audit(str(audit_path))["verdict"] == "clean"


class TestTamperedSweep:
    def test_single_bit_row_tamper_is_exit_1(self, tmp_path):
        # The other pinned acceptance scenario: flip one digit of one
        # recorded threshold and verifyaudit must reject (exit 1).
        path = tmp_path / "sweep.jsonl"
        robust_guarantee_sweep(
            MESSENGERS, LOSSES, max_workers=1, checkpoint_path=path, audit=True
        )
        audit_path = default_audit_path(path)
        lines = open(audit_path).read().splitlines()
        tampered = []
        flipped = False
        for line in lines:
            record = json.loads(line)
            if record.get("type") == "leaf" and not flipped:
                threshold = record["row"]["post_threshold"]
                record["row"]["post_threshold"] = (
                    "1/3" if threshold != "1/3" else "1/5"
                )
                flipped = True
            tampered.append(json.dumps(record, sort_keys=True))
        assert flipped
        with open(audit_path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(tampered) + "\n")
        assert verifyaudit_main([str(audit_path)]) == 1
        report = verify_audit(str(audit_path))
        assert report["verdict"] == "divergent"
        assert report["hash_defects"]  # the leaf hash no longer matches

    def test_stale_chain_tamper_is_caught_by_checkpoint_tier(self, tmp_path):
        # A smarter tamperer rewrites the row AND recomputes the leaf's
        # hashes, forging a self-consistent chain suffix.  The hash tier
        # passes by construction; the checkpoint cross-check catches it.
        from repro.obs.audit import chain_hash, leaf_hash

        path = tmp_path / "sweep.jsonl"
        robust_guarantee_sweep(
            MESSENGERS, LOSSES, max_workers=1, checkpoint_path=path, audit=True
        )
        audit_path = default_audit_path(path)
        lines = open(audit_path).read().splitlines()
        records = [json.loads(line) for line in lines]
        prev = None
        for record in records:
            if record.get("type") != "leaf":
                continue
            if record["index"] == 1:
                record["row"]["post_threshold"] = "1/977"
            if prev is not None:
                record["prev"] = prev
            record["leaf_hash"] = leaf_hash(
                record["index"], record["task"], record["row"], record["root_ref"]
            )
            record["chain"] = chain_hash(record["prev"], record["leaf_hash"])
            prev = record["chain"]
        with open(audit_path, "w", encoding="utf-8") as handle:
            handle.write(
                "\n".join(json.dumps(r, sort_keys=True) for r in records) + "\n"
            )
        report = verify_audit(str(audit_path), replay=False)
        assert report["hash_defects"] == []
        assert report["checkpoint_defects"]
        assert report["verdict"] == "divergent"
