"""Whole-program model: symbol resolution and the effect fixpoint.

Consumes the per-module summaries produced by
:mod:`tools.reproflow.extract` (plain dicts, possibly loaded from the
sha256 cache) and builds the cross-module picture:

* a global function index keyed by fully-qualified name
  (``repro.attack.sweep.sweep_row_of``),
* symbol resolution that chases from-imports, aliases, package
  ``__init__`` re-exports (with a cycle guard), class methods through
  base classes, module-level instances, and constructor calls,
* a deterministic fixpoint over the transitive effect sets
  (``reads_clock``, ``unseeded_random``, ``mutates_global``, ``io``)
  with a *witness* per (function, effect) so every finding can print
  the exact call chain down to the intrinsic site,
* a second fixpoint for float-returning functions (``returns_float``)
  and transitive float usage (``uses_float``), with
  ``repro.probability.fractionutil`` carved out as the one sanctioned
  float boundary.

Known limitation, by design: calls through dynamically-typed values
(e.g. a ``recorder`` parameter satisfying a protocol) are not resolved.
The paper-level invariants this tier guards are about *statically
shipped* work -- task payloads and their call closures -- where every
edge is nameable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: Effects propagated transitively through the call graph.
TRANSITIVE_EFFECTS = ("reads_clock", "unseeded_random", "mutates_global", "io")

#: The sanctioned float boundaries (RL001's carve-out, honoured here
#: too): ``fractionutil`` converts floats *into* exact Fractions, and
#: ``wordmask`` keeps numpy arrays strictly internal -- every public
#: return is a plain Python int (weight sums proven overflow-safe before
#: any ``int64`` accumulation) that the space layer wraps into a
#: Fraction.  Neither module's return values are ever float-tainted.
FLOAT_BOUNDARY_MODULES = frozenset(
    {
        "repro.probability.fractionutil",
        "repro.probability.wordmask",
    }
)

#: Save-and-restore scopes: context managers that mutate a module global
#: but restore the previous value in a ``finally``, so the mutation is
#: confined to their dynamic extent.  Re-executing a caller (retry,
#: resume, pool re-dispatch) is idempotent with respect to these, and no
#: result value depends on how often or when they ran -- which is the
#: property RL009/RL012 actually guard.  The intrinsic effect is still
#: recorded on the function itself; it just does not propagate to
#: callers.
RESTORING_SCOPE_FUNCTIONS = frozenset({"repro.probability.bitset.use_backend"})

#: A witness for one (function, effect) pair: either the intrinsic site
#: itself or the first call edge that imported the effect.
Cause = Tuple  # ("intrinsic", line, detail) | ("call", callee_fqn, line)


@dataclass(frozen=True)
class FunctionInfo:
    """One function record located inside the whole program."""

    fqn: str
    module: str
    path: str
    record: Dict[str, object]

    @property
    def line(self) -> int:
        return int(self.record["line"])  # type: ignore[arg-type]

    @property
    def qualname(self) -> str:
        return str(self.record["name"])


@dataclass(frozen=True)
class PayloadSite:
    """One call site that ships a payload argument somewhere."""

    caller: FunctionInfo
    line: int
    callee_fqns: Tuple[str, ...]
    payload: Dict[str, object]


@dataclass
class Program:
    """The resolved whole-program view over a set of module summaries."""

    modules: Dict[str, Dict[str, object]] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: (caller_fqn) -> ordered resolved call edges (callee_fqn, line).
    resolved_calls: Dict[str, List[Tuple[str, int]]] = field(default_factory=dict)
    #: (fqn, effect) -> witness cause, after the fixpoint.
    effect_cause: Dict[Tuple[str, str], Cause] = field(default_factory=dict)
    #: fqn -> witness cause for a float-valued return, after the fixpoint.
    returns_float: Dict[str, Cause] = field(default_factory=dict)
    #: fqn -> witness cause for any transitive float usage.
    uses_float: Dict[str, Cause] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, summaries: Sequence[Dict[str, object]]) -> "Program":
        program = cls()
        for summary in summaries:
            program.modules[str(summary["module"])] = summary
        for module_name in sorted(program.modules):
            summary = program.modules[module_name]
            for qualname, record in summary["functions"].items():  # type: ignore[union-attr]
                fqn = f"{module_name}.{qualname}"
                program.functions[fqn] = FunctionInfo(
                    fqn=fqn,
                    module=module_name,
                    path=str(summary["path"]),
                    record=record,
                )
        program._resolve_all_calls()
        program._run_effect_fixpoint()
        program._run_float_fixpoint()
        return program

    # ------------------------------------------------------------------
    # symbol resolution
    # ------------------------------------------------------------------

    def _module_binding(
        self, module_name: str, name: str, seen: Set[Tuple[str, str]]
    ) -> Optional[Tuple]:
        """Resolve ``name`` inside ``module_name``'s namespace.

        Returns an entity tuple:
        ``("function", fqn)`` | ``("class", module, class_name)`` |
        ``("module", dotted)`` | ``("instance", module, const_name)``.
        """
        if (module_name, name) in seen:
            return None
        seen.add((module_name, name))
        summary = self.modules.get(module_name)
        if summary is None:
            return None
        functions = summary["functions"]
        classes = summary["classes"]
        constants = summary["constants"]
        imports = summary["imports"]
        if name in functions:  # type: ignore[operator]
            return ("function", f"{module_name}.{name}")
        if name in classes:  # type: ignore[operator]
            return ("class", module_name, name)
        if name in constants:  # type: ignore[operator]
            return ("instance", module_name, name)
        if name in imports:  # type: ignore[operator]
            return self._resolve_dotted(str(imports[name]), seen)  # type: ignore[index]
        # A submodule reachable as an attribute of its package.
        candidate = f"{module_name}.{name}"
        if candidate in self.modules:
            return ("module", candidate)
        return None

    def _resolve_dotted(
        self, dotted: str, seen: Optional[Set[Tuple[str, str]]] = None
    ) -> Optional[Tuple]:
        """Resolve an absolute dotted path to an entity, chasing
        re-exports.  ``repro.attack.sweep_row_of`` lands on the function
        in ``repro.attack.sweep`` via the package ``__init__`` import."""
        if seen is None:
            seen = set()
        if dotted in self.modules:
            return ("module", dotted)
        # Longest module prefix, then descend attribute by attribute.
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix not in self.modules:
                continue
            entity: Optional[Tuple] = ("module", prefix)
            for attr in parts[cut:]:
                entity = self._descend(entity, attr, seen)
                if entity is None:
                    break
            if entity is not None:
                return entity
        return None

    def _descend(
        self, entity: Optional[Tuple], attr: str, seen: Set[Tuple[str, str]]
    ) -> Optional[Tuple]:
        if entity is None:
            return None
        kind = entity[0]
        if kind == "module":
            return self._module_binding(entity[1], attr, seen)
        if kind == "class":
            fqn = self._class_method(entity[1], entity[2], attr)
            return ("function", fqn) if fqn else None
        if kind == "instance":
            class_entity = self._instance_class(entity[1], entity[2])
            if class_entity is None:
                return None
            return self._descend(class_entity, attr, seen)
        return None

    def _instance_class(self, module_name: str, const_name: str) -> Optional[Tuple]:
        """The class entity of a module-level ``NAME = Ctor(...)``."""
        summary = self.modules.get(module_name)
        if summary is None:
            return None
        const = summary["constants"].get(const_name)  # type: ignore[union-attr]
        if not const or const.get("kind") != "instance":
            return None
        entity = self._resolve_in_module(module_name, str(const["ctor"]))
        if entity is not None and entity[0] == "class":
            return entity
        return None

    def _resolve_in_module(self, module_name: str, dotted: str) -> Optional[Tuple]:
        """Resolve a possibly-dotted local reference from inside a module."""
        head, _, rest = dotted.partition(".")
        entity = self._module_binding(module_name, head, set())
        for attr in rest.split(".") if rest else []:
            entity = self._descend(entity, attr, set())
        return entity

    def _class_method(
        self, module_name: str, class_name: str, method: str
    ) -> Optional[str]:
        """FQN of ``method`` on the class, searching base classes too."""
        pending: List[Tuple[str, str]] = [(module_name, class_name)]
        visited: Set[Tuple[str, str]] = set()
        while pending:
            mod, cls = pending.pop(0)
            if (mod, cls) in visited:
                continue
            visited.add((mod, cls))
            summary = self.modules.get(mod)
            if summary is None:
                continue
            info = summary["classes"].get(cls)  # type: ignore[union-attr]
            if info is None:
                continue
            fqn = f"{mod}.{cls}.{method}"
            if fqn in self.functions:
                return fqn
            for base in info.get("bases", []):
                base_entity = self._resolve_in_module(mod, str(base))
                if base_entity is not None and base_entity[0] == "class":
                    pending.append((base_entity[1], base_entity[2]))
        return None

    def _constructor_targets(self, module_name: str, class_name: str) -> List[str]:
        targets = []
        for hook in ("__init__", "__post_init__"):
            fqn = self._class_method(module_name, class_name, hook)
            if fqn is not None:
                targets.append(fqn)
        return targets

    def resolve_ref(self, info: FunctionInfo, ref: Sequence[object]) -> List[str]:
        """Resolve one raw call reference from ``info``'s body to the
        function FQNs it can reach (empty when dynamic/external)."""
        kind = str(ref[0])
        if kind == "local":
            fqn = f"{info.module}.{ref[1]}"
            return [fqn] if fqn in self.functions else []
        if kind == "self":
            record = info.record
            class_name = record.get("class")
            if class_name is None:
                return []
            fqn = self._class_method(info.module, str(class_name), str(ref[1]))
            return [fqn] if fqn else []
        if kind == "typed":
            entity = self._resolve_in_module(info.module, str(ref[1]))
            if entity is not None and entity[0] == "class":
                fqn = self._class_method(entity[1], entity[2], str(ref[2]))
                return [fqn] if fqn else []
            return []
        if kind == "name":
            entity = self._module_binding(info.module, str(ref[1]), set())
            return self._entity_call_targets(entity)
        if kind == "dotted":
            entity = self._resolve_in_module(info.module, str(ref[1]))
            return self._entity_call_targets(entity)
        return []

    def _entity_call_targets(self, entity: Optional[Tuple]) -> List[str]:
        """Function FQNs reached by *calling* the entity."""
        if entity is None:
            return []
        if entity[0] == "function":
            return [entity[1]] if entity[1] in self.functions else []
        if entity[0] == "class":
            return self._constructor_targets(entity[1], entity[2])
        if entity[0] == "instance":
            class_entity = self._instance_class(entity[1], entity[2])
            if class_entity is not None:
                fqn = self._class_method(class_entity[1], class_entity[2], "__call__")
                return [fqn] if fqn else []
        return []

    def resolve_payload_targets(
        self, info: FunctionInfo, payload: Dict[str, object]
    ) -> List[str]:
        """Function FQNs a payload descriptor names (empty for lambdas --
        those are judged directly by RL011, not resolved)."""
        kind = payload.get("kind")
        targets: List[str] = []
        if kind == "refs":
            for ref in payload.get("refs", []):  # type: ignore[union-attr]
                if ref and ref[0] == "lambda":
                    continue
                targets.extend(self.resolve_ref(info, ref))
        elif kind == "constructed":
            for ctor_target in self.resolve_ref(info, payload["ref"]):  # type: ignore[arg-type]
                # The instance is the payload: its __call__ does the work,
                # and construction effects ride along.
                targets.append(ctor_target)
                owner = ctor_target.rsplit(".", 2)
                if len(owner) == 3 and owner[2] in ("__init__", "__post_init__"):
                    call_fqn = self._class_method(
                        info.module
                        if owner[0] not in self.modules
                        else owner[0],
                        owner[1],
                        "__call__",
                    )
                    if call_fqn:
                        targets.append(call_fqn)
        deduped: List[str] = []
        for fqn in targets:
            if fqn not in deduped:
                deduped.append(fqn)
        return deduped

    # ------------------------------------------------------------------
    # fixpoints
    # ------------------------------------------------------------------

    def _resolve_all_calls(self) -> None:
        for fqn in sorted(self.functions):
            info = self.functions[fqn]
            edges: List[Tuple[str, int]] = []
            for call in info.record.get("calls", []):  # type: ignore[union-attr]
                for target in self.resolve_ref(info, call["ref"]):
                    edges.append((target, int(call["line"])))
            self.resolved_calls[fqn] = edges

    def _run_effect_fixpoint(self) -> None:
        for fqn in sorted(self.functions):
            effects = self.functions[fqn].record.get("effects", {})
            for effect in TRANSITIVE_EFFECTS:
                sites = effects.get(effect)  # type: ignore[union-attr]
                if sites:
                    first = sites[0]
                    self.effect_cause[(fqn, effect)] = (
                        "intrinsic",
                        int(first["line"]),
                        str(first["detail"]),
                    )
        changed = True
        while changed:
            changed = False
            for fqn in sorted(self.functions):
                for callee, line in self.resolved_calls[fqn]:
                    for effect in TRANSITIVE_EFFECTS:
                        if (
                            effect == "mutates_global"
                            and callee in RESTORING_SCOPE_FUNCTIONS
                        ):
                            continue
                        if (callee, effect) in self.effect_cause and (
                            fqn,
                            effect,
                        ) not in self.effect_cause:
                            self.effect_cause[(fqn, effect)] = (
                                "call",
                                callee,
                                line,
                            )
                            changed = True

    def _run_float_fixpoint(self) -> None:
        for fqn in sorted(self.functions):
            info = self.functions[fqn]
            if info.module in FLOAT_BOUNDARY_MODULES:
                continue
            sites = info.record.get("float_return_sites", [])
            if sites:
                first = sites[0]  # type: ignore[index]
                self.returns_float[fqn] = (
                    "intrinsic",
                    int(first["line"]),
                    str(first["detail"]),
                )
            float_sites = info.record.get("float_sites", [])
            if float_sites:
                first = float_sites[0]  # type: ignore[index]
                self.uses_float[fqn] = (
                    "intrinsic",
                    int(first["line"]),
                    str(first["detail"]),
                )
        changed = True
        while changed:
            changed = False
            for fqn in sorted(self.functions):
                info = self.functions[fqn]
                if info.module in FLOAT_BOUNDARY_MODULES:
                    continue
                if fqn not in self.returns_float:
                    for taint in info.record.get("return_taint", []):  # type: ignore[union-attr]
                        for callee in self.resolve_ref(info, taint["ref"]):
                            if callee in self.returns_float:
                                self.returns_float[fqn] = (
                                    "call",
                                    callee,
                                    int(taint["line"]),
                                )
                                changed = True
                                break
                        if fqn in self.returns_float:
                            break
                if fqn not in self.uses_float:
                    for callee, line in self.resolved_calls[fqn]:
                        callee_info = self.functions[callee]
                        if callee_info.module in FLOAT_BOUNDARY_MODULES:
                            continue
                        if callee in self.uses_float:
                            self.uses_float[fqn] = ("call", callee, line)
                            changed = True
                            break

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def effect_chain(self, fqn: str, effect: str) -> List[Tuple[str, int, str]]:
        """The witness chain for ``(fqn, effect)`` down to the intrinsic
        site: ``[(fqn, line, detail_or_callee), ...]`` ending at the
        offending primitive."""
        chain: List[Tuple[str, int, str]] = []
        current = fqn
        guard: Set[str] = set()
        while current not in guard:
            guard.add(current)
            cause = self.effect_cause.get((current, effect))
            if cause is None:
                break
            if cause[0] == "intrinsic":
                chain.append((current, int(cause[1]), str(cause[2])))
                break
            chain.append((current, int(cause[2]), f"calls {cause[1]}"))
            current = str(cause[1])
        return chain

    def float_chain(self, fqn: str) -> List[Tuple[str, int, str]]:
        """Witness chain for a float-valued return."""
        chain: List[Tuple[str, int, str]] = []
        current = fqn
        guard: Set[str] = set()
        while current not in guard:
            guard.add(current)
            cause = self.returns_float.get(current)
            if cause is None:
                break
            if cause[0] == "intrinsic":
                chain.append((current, int(cause[1]), str(cause[2])))
                break
            chain.append((current, int(cause[2]), f"calls {cause[1]}"))
            current = str(cause[1])
        return chain

    def uses_float_chain(self, fqn: str) -> List[Tuple[str, int, str]]:
        """Witness chain for any transitive float usage."""
        chain: List[Tuple[str, int, str]] = []
        current = fqn
        guard: Set[str] = set()
        while current not in guard:
            guard.add(current)
            cause = self.uses_float.get(current)
            if cause is None:
                break
            if cause[0] == "intrinsic":
                chain.append((current, int(cause[1]), str(cause[2])))
                break
            chain.append((current, int(cause[2]), f"calls {cause[1]}"))
            current = str(cause[1])
        return chain

    def render_chain(self, chain: Sequence[Tuple[str, int, str]]) -> str:
        """``a (path:3) -> b (path:7): time.time()`` -- the human tail of
        every interprocedural finding."""
        parts: List[str] = []
        for index, (fqn, line, detail) in enumerate(chain):
            info = self.functions.get(fqn)
            location = f"{info.path}:{line}" if info else f"?:{line}"
            if index == len(chain) - 1:
                parts.append(f"{fqn} ({location}): {detail}")
            else:
                parts.append(f"{fqn} ({location})")
        return " -> ".join(parts)

    def payload_sites(self) -> Iterator[PayloadSite]:
        """Every call site that ships a statically-visible payload."""
        for fqn in sorted(self.functions):
            info = self.functions[fqn]
            for call in info.record.get("payload_calls", []):  # type: ignore[union-attr]
                callees = tuple(self.resolve_ref(info, call["ref"]))
                yield PayloadSite(
                    caller=info,
                    line=int(call["line"]),
                    callee_fqns=callees,
                    payload=call["payload"],
                )

    def registry_payloads(
        self, module_name: str, const_name: str
    ) -> List[Tuple[str, object]]:
        """Resolved values of a module-level registry dict: a list of
        ``("function", fqn)`` / ``("lambda", line)`` entries."""
        summary = self.modules.get(module_name)
        if summary is None:
            return []
        const = summary["constants"].get(const_name)  # type: ignore[union-attr]
        if not const or const.get("kind") != "registry":
            return []
        results: List[Tuple[str, object]] = []
        for ref in const.get("refs", []):
            if ref[0] == "lambda":
                results.append(("lambda", int(ref[1])))
                continue
            entity = (
                self._module_binding(module_name, str(ref[1]), set())
                if ref[0] == "name"
                else self._resolve_in_module(module_name, str(ref[1]))
            )
            for fqn in self._entity_call_targets(entity):
                results.append(("function", fqn))
        return results

    def transitive_closure(self, roots: Sequence[str]) -> List[str]:
        """Every function reachable from ``roots`` through resolved calls,
        sorted, roots included."""
        seen: Set[str] = set()
        pending = [fqn for fqn in roots if fqn in self.functions]
        while pending:
            fqn = pending.pop()
            if fqn in seen:
                continue
            seen.add(fqn)
            for callee, _line in self.resolved_calls.get(fqn, []):
                if callee not in seen:
                    pending.append(callee)
        return sorted(seen)

    def call_edges(self) -> List[Tuple[str, str, int]]:
        """All resolved edges, sorted, for the report artifact."""
        edges: List[Tuple[str, str, int]] = []
        for caller in sorted(self.resolved_calls):
            for callee, line in self.resolved_calls[caller]:
                edges.append((caller, callee, line))
        return sorted(set(edges))


__all__ = [
    "Cause",
    "FLOAT_BOUNDARY_MODULES",
    "FunctionInfo",
    "PayloadSite",
    "Program",
    "RESTORING_SCOPE_FUNCTIONS",
    "TRANSITIVE_EFFECTS",
]
