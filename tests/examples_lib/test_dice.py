"""The die example of Section 5."""

from fractions import Fraction

import pytest

from repro.core import OpponentAssignment, ProbabilityAssignment
from repro.examples_lib import die_assignments, die_system


@pytest.fixture(scope="module")
def system_and_fact():
    return die_system()


@pytest.fixture(scope="module")
def assignments(system_and_fact):
    psys, _ = system_and_fact
    return die_assignments(psys)


class TestSystem:
    def test_six_runs(self, system_and_fact):
        psys, _ = system_and_fact
        assert len(psys.system.runs) == 6

    def test_even_fact_extension(self, system_and_fact, assignments):
        _, even = system_and_fact
        evens = [point for point in assignments.time2_points if even.holds_at(point)]
        assert len(evens) == 3

    def test_synchronous(self, system_and_fact):
        psys, _ = system_and_fact
        assert psys.system.is_synchronous()


class TestWholeSpace:
    def test_even_has_probability_half(self, system_and_fact, assignments):
        _, even = system_and_fact
        whole = ProbabilityAssignment(assignments.whole)
        for point in assignments.time2_points:
            assert whole.probability(1, point, even) == Fraction(1, 2)

    def test_p2_knows_half(self, system_and_fact, assignments):
        _, even = system_and_fact
        whole = ProbabilityAssignment(assignments.whole)
        c = assignments.time2_points[0]
        assert whole.knows_probability_interval(1, c, even, "1/2", "1/2")


class TestSplitSpace:
    def test_even_is_third_or_two_thirds(self, system_and_fact, assignments):
        _, even = system_and_fact
        split = ProbabilityAssignment(assignments.split)
        values = {
            split.probability(1, point, even) for point in assignments.time2_points
        }
        assert values == {Fraction(1, 3), Fraction(2, 3)}

    def test_p2_knowledge_interval_widens(self, system_and_fact, assignments):
        # subdividing makes p2's knowledge strictly less precise (Theorem 9)
        _, even = system_and_fact
        whole = ProbabilityAssignment(assignments.whole)
        split = ProbabilityAssignment(assignments.split)
        c = assignments.time2_points[0]
        assert whole.knowledge_interval(1, c, even) == (Fraction(1, 2), Fraction(1, 2))
        assert split.knowledge_interval(1, c, even) == (Fraction(1, 3), Fraction(2, 3))

    def test_split_is_below_whole_in_lattice(self, assignments):
        assert assignments.split.leq(assignments.whole)
        assert not assignments.whole.leq(assignments.split)


class TestBettingReading:
    def test_split_is_opponent_assignment_for_p3(self, system_and_fact, assignments):
        # the split corresponds to betting against the agent who saw the half
        psys, _ = system_and_fact
        against_p3 = OpponentAssignment(psys, 2)
        for point in assignments.time2_points:
            assert against_p3.sample_space(1, point) == assignments.split.sample_space(
                1, point
            )

    def test_whole_is_post_for_p2(self, system_and_fact, assignments):
        from repro.core import PostAssignment

        psys, _ = system_and_fact
        post = PostAssignment(psys)
        for point in assignments.time2_points:
            assert post.sample_space(1, point) == assignments.whole.sample_space(
                1, point
            )
