"""The tracediff CLI: run-to-run regression analysis on artifacts."""

import json
import sys
from fractions import Fraction
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from repro.errors import TraceError  # noqa: E402
from repro.attack import build_ca2, row_provenance_derivation  # noqa: E402
from repro.attack.sweep import guarantee_sweep, sweep_row_of, sweep_tasks  # noqa: E402
from repro.obs import TraceRecorder, use_recorder, write_derivation  # noqa: E402
from repro.probability import reset_kernel_totals  # noqa: E402
from repro.robustness import RetryPolicy, run_tasks  # noqa: E402
from repro.testing import FaultInjectingTask, FaultPlan  # noqa: E402

from tools.tracediff import diff_artifacts, render_diff  # noqa: E402
from tools.tracediff.cli import main as cli_main  # noqa: E402


def _double(value):
    return value * 2


def make_chaos_trace(path, seed, provenance=False):
    """A seeded sweep + chaos engine run: deterministic given the seed."""
    reset_kernel_totals()
    plan = FaultPlan.from_seed(seed=seed, task_count=5, kinds=("raise",), rate=0.6)
    recorder = TraceRecorder(path)
    with use_recorder(recorder):
        guarantee_sweep([1, 2], [Fraction(1, 2)], provenance=provenance)
        run_tasks(
            FaultInjectingTask(_double, plan),
            list(range(5)),
            max_workers=1,
            policy=RetryPolicy(max_attempts=4, base_delay=0.0),
            sleep=lambda _seconds: None,
        )
    recorder.close()
    return path


class TestTraceDiff:
    def test_identical_seeds_diverge_nowhere(self, tmp_path):
        # the pinned acceptance case: same seed, same fault plan ->
        # byte-identical content, zero divergence
        a = make_chaos_trace(tmp_path / "a.jsonl", seed=7)
        b = make_chaos_trace(tmp_path / "b.jsonl", seed=7)
        summary = diff_artifacts(str(a), str(b))
        assert summary["kind"] == "trace"
        assert summary["diverged"] is False
        assert summary["first_divergence"] is None
        assert summary["counter_deltas"] == {}
        assert summary["hit_rate"]["shift"] == 0

    def test_different_fault_plans_are_localised(self, tmp_path):
        a = make_chaos_trace(tmp_path / "a.jsonl", seed=7)
        b = make_chaos_trace(tmp_path / "b.jsonl", seed=8)
        summary = diff_artifacts(str(a), str(b))
        assert summary["diverged"] is True
        divergence = summary["first_divergence"]
        # localised: a concrete record index with both sides summarised
        assert isinstance(divergence["index"], int)
        assert divergence["a"] != divergence["b"]
        # different fault plans retry differently: a counter delta names it
        assert any(
            name.startswith("engine.") for name in summary["counter_deltas"]
        )

    def test_timing_ratios_are_informational_not_divergence(self, tmp_path):
        a = make_chaos_trace(tmp_path / "a.jsonl", seed=7)
        b = make_chaos_trace(tmp_path / "b.jsonl", seed=7)
        summary = diff_artifacts(str(a), str(b))
        # spans took (almost surely) different wall time, yet no divergence
        assert summary["timing_ratios"]
        assert "guarantee_sweep" in summary["timing_ratios"]
        assert summary["diverged"] is False

    def test_embedded_derivations_diff_to_a_node(self, tmp_path):
        # two traces whose only content difference is inside the embedded
        # row_provenance derivations: build them by hand from real payloads
        d1 = row_provenance_derivation(build_ca2(2, Fraction(1, 2)))
        d2 = row_provenance_derivation(build_ca2(3, Fraction(1, 2)))
        header = {"type": "header", "schema": "repro-trace/1", "seq": 0, "ts": 0.0}
        for name, payload in (("a", d1), ("b", d2)):
            lines = [
                json.dumps(header),
                json.dumps(
                    {
                        "type": "event",
                        "kind": "row_provenance",
                        "fields": {
                            "fingerprint": payload.fingerprint(),
                            "derivation": payload.json_ready(),
                        },
                        "seq": 1,
                        "ts": 0.0,
                    }
                ),
            ]
            (tmp_path / f"{name}.jsonl").write_text(
                "\n".join(lines) + "\n", encoding="utf-8"
            )
        summary = diff_artifacts(str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl"))
        assert summary["diverged"] is True
        node = summary["derivation_divergence"]
        assert node is not None
        assert node["diverged"] is True
        assert node["first_divergence"]["path"].startswith(("root", "formula"))


class TestExplainDiff:
    def test_identical_derivations_collide(self, tmp_path):
        derivation = row_provenance_derivation(build_ca2(2, Fraction(1, 2)))
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_derivation(derivation, a)
        write_derivation(derivation, b)
        summary = diff_artifacts(str(a), str(b))
        assert summary["kind"] == "explain"
        assert summary["diverged"] is False
        assert summary["fingerprint_a"] == summary["fingerprint_b"]

    def test_first_diverging_node_is_reported(self, tmp_path):
        d1 = row_provenance_derivation(build_ca2(2, Fraction(1, 2)))
        d2 = row_provenance_derivation(build_ca2(3, Fraction(1, 2)))
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_derivation(d1, a)
        write_derivation(d2, b)
        summary = diff_artifacts(str(a), str(b))
        assert summary["diverged"] is True
        divergence = summary["first_divergence"]
        assert divergence is not None
        assert "path" in divergence and "field" in divergence


class TestBenchDiff:
    def test_self_diff_is_clean_and_ratios_reported(self, tmp_path):
        bench = REPO_ROOT / "BENCH_4.json"
        summary = diff_artifacts(str(bench), str(bench))
        assert summary["kind"] == "bench"
        assert summary["diverged"] is False
        assert summary["result_divergences"] == []
        assert all(
            entry["ratio"] in (1.0, None)
            for entry in summary["timing_ratios"].values()
        )

    def test_changed_results_diverge_but_timing_does_not(self, tmp_path):
        document = json.loads((REPO_ROOT / "BENCH_4.json").read_text())
        timing_only = json.loads(json.dumps(document))
        for entry in timing_only["benchmarks"]:
            entry["seconds"] = entry.get("seconds", 0.0) * 10
        changed = json.loads(json.dumps(document))
        changed["benchmarks"][0]["results"] = {"tampered": True}
        base = tmp_path / "base.json"
        base.write_text(json.dumps(document), encoding="utf-8")
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(timing_only), encoding="utf-8")
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(changed), encoding="utf-8")
        assert diff_artifacts(str(base), str(slow))["diverged"] is False
        summary = diff_artifacts(str(base), str(bad))
        assert summary["diverged"] is True
        assert summary["first_divergence"]["benchmark"] == (
            summary["result_divergences"][0]["name"]
        )


class TestCli:
    def test_zero_divergence_exit_zero(self, tmp_path, capsys):
        a = make_chaos_trace(tmp_path / "a.jsonl", seed=7)
        b = make_chaos_trace(tmp_path / "b.jsonl", seed=7)
        assert cli_main([str(a), str(b)]) == 0
        assert "identical content" in capsys.readouterr().out

    def test_divergence_exit_zero_without_flag(self, tmp_path, capsys):
        a = make_chaos_trace(tmp_path / "a.jsonl", seed=7)
        b = make_chaos_trace(tmp_path / "b.jsonl", seed=8)
        assert cli_main([str(a), str(b)]) == 0
        assert "DIVERGED" in capsys.readouterr().out

    def test_divergence_exit_one_with_flag(self, tmp_path, capsys):
        a = make_chaos_trace(tmp_path / "a.jsonl", seed=7)
        b = make_chaos_trace(tmp_path / "b.jsonl", seed=8)
        assert cli_main(["--fail-on-divergence", str(a), str(b)]) == 1

    def test_json_output_round_trips(self, tmp_path, capsys):
        a = make_chaos_trace(tmp_path / "a.jsonl", seed=7)
        b = make_chaos_trace(tmp_path / "b.jsonl", seed=8)
        assert cli_main(["--json", str(a), str(b)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "trace"
        assert payload["diverged"] is True

    def test_missing_file_exits_two(self, tmp_path, capsys):
        a = make_chaos_trace(tmp_path / "a.jsonl", seed=7)
        assert cli_main([str(a), str(tmp_path / "absent.jsonl")]) == 2
        assert "tracediff:" in capsys.readouterr().err

    def test_unrecognised_schema_exits_two(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"schema": "repro-mystery/9"}', encoding="utf-8")
        assert cli_main([str(bogus), str(bogus)]) == 2
        assert "unrecognised" in capsys.readouterr().err

    def test_kind_mismatch_exits_two(self, tmp_path, capsys):
        trace = make_chaos_trace(tmp_path / "a.jsonl", seed=7)
        derivation = row_provenance_derivation(build_ca2(2, Fraction(1, 2)))
        explain_path = tmp_path / "d.json"
        write_derivation(derivation, explain_path)
        assert cli_main([str(trace), str(explain_path)]) == 2
        assert "cannot diff" in capsys.readouterr().err


class TestRender:
    def test_render_names_the_sections(self, tmp_path):
        a = make_chaos_trace(tmp_path / "a.jsonl", seed=7)
        b = make_chaos_trace(tmp_path / "b.jsonl", seed=8)
        text = render_diff(diff_artifacts(str(a), str(b)))
        assert "counter deltas" in text
        assert "timing ratios (informational, B/A)" in text
        assert "first divergence" in text


class TestMetricsDiff:
    def _snapshot(self, path, label="run", extra=0, worker=123):
        from repro.obs import MetricsRecorder, write_snapshot

        metrics = MetricsRecorder()
        metrics.counter("model.points", 10 + extra)
        metrics.counter(f"worker.{worker}.kernel.cache_hits", 5)
        write_snapshot(path, metrics=metrics, label=label)
        return path

    def test_metrics_artifacts_detected_and_identical(self, tmp_path):
        a = self._snapshot(tmp_path / "a.jsonl", worker=111)
        b = self._snapshot(tmp_path / "b.jsonl", worker=999)
        summary = diff_artifacts(str(a), str(b))
        assert summary["kind"] == "metrics"
        # Worker pids are OS-assigned labels, masked before comparing.
        assert summary["diverged"] is False
        assert summary["counter_deltas"] == {}

    def test_counter_divergence_is_content(self, tmp_path):
        a = self._snapshot(tmp_path / "a.jsonl")
        b = self._snapshot(tmp_path / "b.jsonl", extra=3)
        summary = diff_artifacts(str(a), str(b))
        assert summary["diverged"] is True
        assert summary["counter_deltas"]["model.points"]["delta"] == 3
        assert summary["first_divergence"]["field"] == "counters"
        rendered = render_diff(summary)
        assert "DIVERGED" in rendered
        assert "model.points" in rendered

    def test_label_mismatch_is_content(self, tmp_path):
        a = self._snapshot(tmp_path / "a.jsonl", label="one")
        b = self._snapshot(tmp_path / "b.jsonl", label="two")
        summary = diff_artifacts(str(a), str(b))
        assert summary["diverged"] is True
        assert summary["first_divergence"]["field"] == "label"

    def test_cannot_mix_metrics_and_trace(self, tmp_path):
        metrics = self._snapshot(tmp_path / "m.jsonl")
        trace = make_chaos_trace(tmp_path / "t.jsonl", seed=7)
        with pytest.raises(TraceError):
            diff_artifacts(str(metrics), str(trace))


class TestWorkerTelemetryNormalisation:
    def _pool_trace(self, path):
        from repro.obs import MetricsRecorder, MultiRecorder

        reset_kernel_totals()
        metrics = MetricsRecorder()
        recorder = TraceRecorder(path)
        with use_recorder(MultiRecorder([metrics, recorder])):
            rows = run_tasks(
                sweep_row_of,
                sweep_tasks([1, 2], [Fraction(1, 2)]),
                max_workers=2,
                progress_every=1,
                sleep=lambda _seconds: None,
            )
        recorder.close()
        return metrics, rows

    def test_two_pool_runs_diverge_nowhere(self, tmp_path):
        # Worker pids, rusage gauges, and elapsed stamps all differ
        # between these runs; none of that is content.
        metrics_a, rows_a = self._pool_trace(tmp_path / "a.jsonl")
        metrics_b, rows_b = self._pool_trace(tmp_path / "b.jsonl")
        if metrics_a.counters.get("engine.pool_fallbacks") or metrics_b.counters.get(
            "engine.pool_fallbacks"
        ):
            pytest.skip("process pools unavailable")
        assert rows_a == rows_b
        summary = diff_artifacts(str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl"))
        assert summary["diverged"] is False, summary["first_divergence"]
        assert summary["counter_deltas"] == {}


class TestExplainV2AndAuditDiff:
    def _write_json(self, path, document):
        path.write_text(json.dumps(document, sort_keys=True) + "\n")
        return path

    def test_v1_and_v2_encodings_of_one_derivation_collide(self, tmp_path):
        from repro.obs import encode_derivation

        derivation = row_provenance_derivation(build_ca2(2, Fraction(1, 2)))
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_derivation(derivation, a)
        self._write_json(b, encode_derivation(derivation))
        summary = diff_artifacts(str(a), str(b))
        assert summary["kind"] == "explain"
        assert summary["diverged"] is False

    def test_explain_dag_roots_compared_by_membership(self, tmp_path):
        from repro.obs import DerivationStore

        first = row_provenance_derivation(build_ca2(2, Fraction(1, 2)))
        second = row_provenance_derivation(build_ca2(3, Fraction(1, 2)))
        a = self._write_json(
            tmp_path / "a.json", DerivationStore().encode_many([first, second])
        )
        b = self._write_json(
            tmp_path / "b.json", DerivationStore().encode_many([first])
        )
        summary = diff_artifacts(str(a), str(b))
        assert summary["kind"] == "explain-dag"
        assert summary["diverged"] is True
        assert len(summary["only_in_a"]) == 1
        assert summary["only_in_b"] == []

    def _audited_sweep(self, tmp_path, name):
        from repro.robustness import default_audit_path, robust_guarantee_sweep

        checkpoint = tmp_path / f"{name}.jsonl"
        robust_guarantee_sweep(
            [1, 2],
            [Fraction(1, 2)],
            max_workers=1,
            checkpoint_path=checkpoint,
            audit=True,
        )
        return Path(default_audit_path(checkpoint))

    def test_identical_audited_sweeps_diverge_nowhere(self, tmp_path):
        a = self._audited_sweep(tmp_path, "a")
        b = self._audited_sweep(tmp_path, "b")
        summary = diff_artifacts(str(a), str(b))
        assert summary["kind"] == "audit"
        assert summary["diverged"] is False
        assert summary["first_divergence"] is None

    def test_stale_chain_tamper_is_content_divergence(self, tmp_path):
        # the recorded chain columns still agree (the tamperer did not
        # re-derive them); the diff must compare claimed content, not
        # trust the recorded roots as an equality shortcut
        a = self._audited_sweep(tmp_path, "a")
        b = self._audited_sweep(tmp_path, "b")
        lines = b.read_text().splitlines()
        edited = []
        for line in lines:
            record = json.loads(line)
            if record.get("type") == "leaf" and record["index"] == 1:
                record["row"]["post_threshold"] = "1/977"
            edited.append(json.dumps(record, sort_keys=True))
        b.write_text("\n".join(edited) + "\n")
        summary = diff_artifacts(str(a), str(b))
        assert summary["diverged"] is True
        divergence = summary["first_divergence"]
        assert divergence["position"] == 1
        assert divergence["field"] == "row"


class TestBisect:
    def test_trace_bisect_lands_on_the_divergent_record(self, tmp_path):
        from tools.tracediff import bisect_artifacts, render_bisect

        a = make_chaos_trace(tmp_path / "a.jsonl", seed=7)
        b = make_chaos_trace(tmp_path / "b.jsonl", seed=8)
        summary = bisect_artifacts(str(a), str(b))
        assert summary["kind"] == "trace"
        assert summary["diverged"] is True
        assert summary["pointer"].startswith("record[")
        # O(log n) probes, not a linear scan
        assert summary["probes"] <= 16
        assert "pointer" in render_bisect(summary)

    def test_trace_bisect_self_is_clean(self, tmp_path):
        from tools.tracediff import bisect_artifacts

        a = make_chaos_trace(tmp_path / "a.jsonl", seed=7)
        b = make_chaos_trace(tmp_path / "b.jsonl", seed=7)
        summary = bisect_artifacts(str(a), str(b))
        assert summary["diverged"] is False
        assert summary["pointer"] is None

    def test_explain_bisect_descends_to_the_field(self, tmp_path):
        from repro.attack import build_ca1
        from tools.tracediff import bisect_artifacts

        d1 = row_provenance_derivation(build_ca1(1, Fraction(1, 4)))
        d2 = row_provenance_derivation(build_ca2(3, Fraction(1, 2)))
        assert d1.fingerprint() != d2.fingerprint()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_derivation(d1, a)
        write_derivation(d2, b)
        summary = bisect_artifacts(str(a), str(b))
        assert summary["diverged"] is True
        assert "formula" in summary["pointer"]

    def test_audit_bisect_recomputes_content_chains(self, tmp_path):
        from tools.tracediff import bisect_artifacts

        maker = TestExplainV2AndAuditDiff()
        a = maker._audited_sweep(tmp_path, "a")
        b = maker._audited_sweep(tmp_path, "b")
        lines = b.read_text().splitlines()
        edited = []
        for line in lines:
            record = json.loads(line)
            if record.get("type") == "leaf" and record["index"] == 1:
                record["row"]["post_threshold"] = "1/977"
            edited.append(json.dumps(record, sort_keys=True))
        b.write_text("\n".join(edited) + "\n")
        summary = bisect_artifacts(str(a), str(b))
        assert summary["diverged"] is True
        assert summary["pointer"].startswith("leaf[1]")

    def test_bisect_rejects_bench_artifacts(self, tmp_path):
        from tools.tracediff import bisect_artifacts

        document = {
            "schema": "repro-bench/1",
            "results": {},
            "environment": {},
        }
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(document))
        b.write_text(json.dumps(document))
        with pytest.raises(TraceError):
            bisect_artifacts(str(a), str(b))

    def test_cli_bisect_exit_codes(self, tmp_path, capsys):
        a = make_chaos_trace(tmp_path / "a.jsonl", seed=7)
        b = make_chaos_trace(tmp_path / "b.jsonl", seed=8)
        assert cli_main(["--bisect", "--fail-on-divergence", str(a), str(b)]) == 1
        assert "pointer" in capsys.readouterr().out
        c = make_chaos_trace(tmp_path / "c.jsonl", seed=7)
        assert cli_main(["--bisect", str(a), str(c)]) == 0
