"""Coordinated attack with more than two generals."""

from fractions import Fraction

import pytest

from repro.attack import (
    achieves,
    assignment_for,
    build_multiparty,
    doomed_but_attacking_points,
    multiparty_run_level,
    post_threshold,
    proposition11_row,
    run_level_probability,
)
from repro.errors import SimulationError


@pytest.fixture(scope="module")
def three_generals():
    return build_multiparty(lieutenants=2, messengers=3)


class TestConstruction:
    def test_agent_count(self, three_generals):
        assert three_generals.psys.system.num_agents == 3
        assert three_generals.group == (0, 1, 2)

    def test_needs_a_lieutenant(self):
        with pytest.raises(SimulationError):
            build_multiparty(lieutenants=0)

    def test_synchronous(self, three_generals):
        assert three_generals.psys.system.is_synchronous()


class TestRunLevel:
    def test_matches_closed_form(self, three_generals):
        assert run_level_probability(three_generals) == multiparty_run_level(
            2, 3, Fraction(1, 2)
        )

    @pytest.mark.parametrize(
        "lieutenants,messengers",
        [(1, 2), (1, 4), (2, 2), (3, 2)],
    )
    def test_closed_form_general(self, lieutenants, messengers):
        attack = build_multiparty(lieutenants, messengers)
        assert run_level_probability(attack) == multiparty_run_level(
            lieutenants, messengers, Fraction(1, 2)
        )

    def test_degrades_with_more_lieutenants(self):
        values = [
            multiparty_run_level(lieutenants, 3, Fraction(1, 2))
            for lieutenants in (1, 2, 3, 4)
        ]
        assert values == sorted(values, reverse=True)


class TestGuarantees:
    def test_silent_protocol_reaches_post_level(self, three_generals):
        threshold = post_threshold(three_generals)
        assert threshold > Fraction(1, 2)
        assert achieves(
            three_generals, assignment_for(three_generals, "post"), threshold
        )

    def test_lattice_row(self, three_generals):
        row = proposition11_row(three_generals, Fraction(3, 4))
        assert row.prior and row.post and not row.fut
        assert row.certain_failure_count == 0

    def test_nobody_certain_of_failure(self, three_generals):
        for agent in three_generals.group:
            assert not doomed_but_attacking_points(three_generals)

    def test_coordination_requires_everyone(self, three_generals):
        # find a run where one lieutenant learned and the other did not:
        # coordination fails even though two of three agree
        system = three_generals.psys.system
        mixed = [
            run
            for run in system.runs
            if three_generals.a_attacks.holds_at(next(iter(run.points())))
            and not three_generals.coordinated.holds_at(next(iter(run.points())))
        ]
        assert mixed
