"""Entry point for ``python -m tools.tracereport``."""

import sys

from .cli import main

sys.exit(main())
