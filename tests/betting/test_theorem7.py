"""Theorem 7 and Proposition 6, verified by exhaustive strategy enumeration."""

from fractions import Fraction

import pytest

from repro.betting import (
    footnote13_threshold_optimality,
    relevant_alphas,
    verify_proposition6,
    verify_theorem7,
)
from repro.core import Fact, opponent_assignment
from repro.examples_lib import three_agent_coin_system
from repro.testing import parity_fact, random_psys


@pytest.fixture(scope="module")
def coin():
    return three_agent_coin_system()


class TestRelevantAlphas:
    def test_contains_boundaries(self, coin):
        pa = opponent_assignment(coin.psys, 1)
        points = coin.psys.system.points_at_time(1)
        grid = relevant_alphas(pa, 0, coin.heads, points)
        assert Fraction(1, 2) in grid
        assert Fraction(1) in grid

    def test_sorted_unique_in_unit_interval(self, coin):
        pa = opponent_assignment(coin.psys, 2)
        grid = relevant_alphas(pa, 0, coin.heads, coin.psys.system.points)
        assert list(grid) == sorted(set(grid))
        assert all(0 <= alpha <= 1 for alpha in grid)

    def test_extra_values_included(self, coin):
        pa = opponent_assignment(coin.psys, 1)
        grid = relevant_alphas(
            pa, 0, coin.heads, coin.psys.system.points, extra=[Fraction(1, 7)]
        )
        assert Fraction(1, 7) in grid


class TestTheorem7:
    def test_coin_vs_ignorant_opponent(self, coin):
        report = verify_theorem7(coin.psys, 0, 1, coin.heads)
        assert report.holds, report.details

    def test_coin_vs_informed_opponent(self, coin):
        report = verify_theorem7(coin.psys, 0, 2, coin.heads)
        assert report.holds, report.details

    def test_negated_fact(self, coin):
        report = verify_theorem7(coin.psys, 0, 2, ~coin.heads)
        assert report.holds, report.details

    def test_tosser_betting_against_observer(self, coin):
        # the informed agent betting against the ignorant one
        report = verify_theorem7(coin.psys, 2, 0, coin.heads)
        assert report.holds, report.details

    def test_random_system_full_vs_clock(self):
        psys = random_psys(seed=21, depth=2, observability=("parity", "clock"))
        report = verify_theorem7(psys, 0, 1, parity_fact())
        assert report.holds, report.details

    def test_random_system_clock_vs_full(self):
        psys = random_psys(seed=22, depth=2, observability=("clock", "full"))
        report = verify_theorem7(psys, 0, 1, parity_fact())
        assert report.holds, report.details

    def test_multiple_trees(self):
        psys = random_psys(seed=23, num_trees=2, depth=2, observability=("clock", "full"))
        report = verify_theorem7(psys, 0, 1, parity_fact())
        assert report.holds, report.details

    def test_explicit_alpha_grid(self, coin):
        report = verify_theorem7(
            coin.psys, 0, 2, coin.heads, alphas=[Fraction(1, 4), Fraction(3, 4), 1]
        )
        assert report.holds, report.details

    def test_report_counts_pairs(self, coin):
        points = coin.psys.system.points_at_time(1)[:1]
        report = verify_theorem7(
            coin.psys, 0, 1, coin.heads, points=points, alphas=[Fraction(1, 2)]
        )
        assert report.checked == 1


class TestProposition6:
    def test_coin_system(self, coin):
        for opponent in (1, 2):
            report = verify_proposition6(coin.psys, 0, opponent, coin.heads)
            assert report.holds, report.details

    def test_random_synchronous_system(self):
        psys = random_psys(seed=31, depth=2, observability=("clock", "full"))
        report = verify_proposition6(psys, 0, 1, parity_fact())
        assert report.holds, report.details

    def test_requires_synchrony(self):
        from repro.errors import SynchronyError

        psys = random_psys(seed=31, depth=2, observability=("blind", "clock"))
        with pytest.raises(SynchronyError):
            verify_proposition6(psys, 0, 1, parity_fact())


class TestFootnote13:
    def test_threshold_equivalence(self, coin):
        point = coin.psys.system.points_at_time(1)[0]
        report = footnote13_threshold_optimality(
            coin.psys,
            0,
            1,
            coin.heads,
            acceptance_payoffs=[Fraction(2), Fraction(5)],
            point=point,
        )
        assert report.holds, report.details

    def test_threshold_equivalence_vs_informed(self, coin):
        point = coin.psys.system.points_at_time(1)[0]
        report = footnote13_threshold_optimality(
            coin.psys,
            0,
            2,
            coin.heads,
            acceptance_payoffs=[Fraction(3), Fraction(4)],
            point=point,
        )
        assert report.holds, report.details

    def test_rejects_trivial_payoffs(self, coin):
        from repro.errors import BettingError

        point = coin.psys.system.points[0]
        with pytest.raises(BettingError):
            footnote13_threshold_optimality(
                coin.psys, 0, 1, coin.heads, acceptance_payoffs=[Fraction(1, 2)], point=point
            )
