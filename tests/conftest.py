"""Shared fixtures: the paper's canonical systems, built once per session."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core import Fact, standard_assignments
from repro.examples_lib import (
    biased_async_system,
    input_coin_system,
    repeated_coin_system,
    single_coin_system,
    three_agent_coin_system,
)
from repro.testing import random_psys, two_agent_coin_psys


@pytest.fixture(scope="session")
def coin3():
    """The introduction's three-agent coin system (p3 tosses and sees)."""
    return three_agent_coin_system()


@pytest.fixture(scope="session")
def coin3_assignments(coin3):
    return standard_assignments(coin3.psys)


@pytest.fixture(scope="session")
def coin1():
    """The single-agent single-coin system of Section 3."""
    return single_coin_system()


@pytest.fixture(scope="session")
def vardi():
    """The input-bit fair/biased coin system (two adversaries)."""
    return input_coin_system()


@pytest.fixture(scope="session")
def repeated4():
    """A 4-toss version of Section 7's asynchronous coin system."""
    return repeated_coin_system(4)


@pytest.fixture(scope="session")
def biased99():
    """The 0.99-biased coin with p2's odd information structure."""
    return biased_async_system()


@pytest.fixture(scope="session")
def tiny_psys():
    """A two-agent, one-toss probabilistic system for structural tests."""
    return two_agent_coin_psys()


@pytest.fixture(scope="session")
def small_random_psys():
    """A deterministic pseudo-random system with mixed observability."""
    return random_psys(
        seed=11,
        num_trees=2,
        num_agents=2,
        depth=2,
        observability=("full", "clock"),
    )


def time1_points(psys):
    return [point for point in psys.system.points if point.time == 1]
