"""Probabilistic primality testing (Sections 1 and 3's motivating example).

Real implementations of the two classic Monte-Carlo tests the paper cites:

* **Miller-Rabin** [Rab80]: for composite ``n``, at least 3/4 of the
  candidate witnesses ``a`` expose compositeness; for prime ``n``, none do.
* **Solovay-Strassen** [SS77]: the Euler/Jacobi criterion; at least 1/2 of
  the candidates expose a composite.

Plus the paper's systems reading: the *input* ``n`` is a type-1 adversary
(we refuse to put a distribution on it), while the random choices of ``a``
are probabilistic.  :func:`primality_system` builds one computation tree
per input; within each tree the algorithm errs with probability at most
``4**-rounds`` (Miller-Rabin), and the fact "``n`` is prime" has
probability 0 or 1 -- it never "becomes probable", exactly as Section 3
insists.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from ..core.facts import Fact
from ..probability.fractionutil import ONE
from ..systems.agents import Agent, act, certainly, chance
from ..systems.synchronous import SyncProtocol, protocol_system
from ..trees.probabilistic_system import ProbabilisticSystem

# ----------------------------------------------------------------------
# Number theory
# ----------------------------------------------------------------------


def is_prime(n: int) -> bool:
    """Deterministic trial-division primality (ground truth for tests)."""
    if n < 2:
        return False
    if n % 2 == 0:
        return n == 2
    divisor = 3
    while divisor * divisor <= n:
        if n % divisor == 0:
            return False
        divisor += 2
    return True


def miller_rabin_witness(n: int, a: int) -> bool:
    """True iff ``a`` witnesses that ``n`` is composite (Miller-Rabin).

    Never true when ``n`` is an odd prime; for odd composite ``n`` at least
    3/4 of ``a in [2, n-2]`` are witnesses.
    """
    if n < 3 or n % 2 == 0:
        return n != 2
    a %= n
    if a in (0, 1, n - 1):
        return False
    d, s = n - 1, 0
    while d % 2 == 0:
        d //= 2
        s += 1
    x = pow(a, d, n)
    if x in (1, n - 1):
        return False
    for _ in range(s - 1):
        x = x * x % n
        if x == n - 1:
            return False
    return True


def jacobi_symbol(a: int, n: int) -> int:
    """The Jacobi symbol ``(a/n)`` for odd positive ``n``."""
    if n <= 0 or n % 2 == 0:
        raise ValueError("Jacobi symbol requires odd positive n")
    a %= n
    result = 1
    while a != 0:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def solovay_strassen_witness(n: int, a: int) -> bool:
    """True iff ``a`` witnesses that ``n`` is composite (Solovay-Strassen)."""
    if n < 3 or n % 2 == 0:
        return n != 2
    a %= n
    if a == 0:
        return True
    jacobi = jacobi_symbol(a, n)
    euler = pow(a, (n - 1) // 2, n)
    return jacobi % n != euler


def witness_density(n: int, witness: Callable[[int, int], bool]) -> Fraction:
    """The exact fraction of ``a in [1, n-1]`` witnessing compositeness."""
    if n < 3:
        raise ValueError("witness density needs n >= 3")
    hits = sum(1 for a in range(1, n) if witness(n, a))
    return Fraction(hits, n - 1)


def probable_prime(n: int, bases: Iterable[int], witness=miller_rabin_witness) -> bool:
    """Run the test with explicit bases; "prime" iff no base witnesses."""
    if n == 2:
        return True
    return not any(witness(n, base) for base in bases)


# ----------------------------------------------------------------------
# The system view (Section 3)
# ----------------------------------------------------------------------


class _TesterAgent(Agent):
    """Draws ``rounds`` uniform candidates and accumulates the verdict."""

    def __init__(self, rounds: int, witness: Callable[[int, int], bool]) -> None:
        self.rounds = rounds
        self.witness = witness

    def initial_state(self, input_value):
        return ("testing", input_value, "no-witness-yet")

    def step(self, state, inbox, round_number: int):
        phase, n, verdict = state
        if phase != "testing":
            return certainly(state)
        if round_number < self.rounds:
            mass = Fraction(1, n - 1)
            branches = []
            for a in range(1, n):
                found = verdict == "witnessed" or self.witness(n, a)
                new_verdict = "witnessed" if found else "no-witness-yet"
                branches.append((mass, act(("testing", n, new_verdict))))
            merged: Dict[object, Fraction] = {}
            for probability, action in branches:
                merged[action[0]] = merged.get(action[0], Fraction(0)) + probability
            return [(probability, (key, ())) for key, probability in merged.items()]
        output = "composite" if verdict == "witnessed" else "prime"
        return certainly(("done", n, output))


@dataclass
class PrimalityExample:
    """One tree per input; the facts of the Section 3 discussion."""

    psys: ProbabilisticSystem
    inputs: Tuple[int, ...]
    correct: Fact
    says_prime: Fact
    input_is_prime: Fact
    rounds: int


def primality_system(
    inputs: Sequence[int],
    rounds: int = 1,
    witness: Callable[[int, int], bool] = miller_rabin_witness,
) -> PrimalityExample:
    """Build the probabilistic system of the primality-testing algorithm.

    One computation tree per input ``n`` (the type-1 adversary); within a
    tree, each round draws ``a`` uniformly from ``[1, n-1]``.
    """
    protocol = SyncProtocol(agents=[_TesterAgent(rounds, witness)], horizon=rounds + 1)
    psys = protocol_system(
        protocol, {f"input={n}": [n] for n in inputs}
    )

    def output_of(local) -> str:
        state = local[0]
        return state[2] if state[0] == "done" else "undecided"

    says_prime = Fact.about_local_state(
        0, lambda local: output_of(local) == "prime", name="says_prime"
    )
    input_is_prime = Fact.about_local_state(
        0, lambda local: is_prime(local[0][1]), name="input_is_prime"
    )
    correct = Fact.about_local_state(
        0,
        lambda local: output_of(local) != "undecided"
        and (output_of(local) == "prime") == is_prime(local[0][1]),
        name="correct_output",
    )
    return PrimalityExample(
        psys, tuple(inputs), correct, says_prime, input_is_prime, rounds
    )


def per_input_correctness(example: PrimalityExample) -> Dict[int, Fraction]:
    """For each input, the probability (over that tree's runs) that the
    final output is correct -- the statement that *does* make sense."""
    results: Dict[int, Fraction] = {}
    for n, adversary in zip(example.inputs, example.psys.adversaries):
        tree = example.psys.tree(adversary)
        total = Fraction(0)
        for run in tree.runs:
            final = run.points()
            last = list(final)[-1]
            if example.correct.holds_at(last):
                total += tree.run_probability(run)
        results[n] = total
    return results


def primality_probability_is_degenerate(example: PrimalityExample) -> bool:
    """Section 3's point: within every tree, "``n`` is prime" has
    probability exactly 0 or exactly 1 -- never anything in between."""
    for adversary in example.psys.adversaries:
        tree = example.psys.tree(adversary)
        space = tree.run_space()
        prime_runs = frozenset(
            run
            for run in tree.runs
            if example.input_is_prime.holds_at(next(iter(run.points())))
        )
        if space.measure(prime_runs) not in (Fraction(0), ONE):
            return False
    return True
