"""Collect machine-readable benchmark timings into ``BENCH_<n>.json``.

``make bench-json`` runs this script.  It executes a curated set of
benchmark workloads with ``time.perf_counter``, tags each record with the
measure backend and system size, and writes one JSON document so the perf
trajectory is comparable PR-over-PR (see ``docs/performance.md`` for how
to read the output).  ``--smoke`` shrinks every parameter so CI can run
the same pipeline in seconds; the script exits nonzero if any benchmark
raises.

Since schema ``repro-bench/2`` every record also carries a ``counters``
snapshot from the observability layer (:mod:`repro.obs`): measure-kernel
cache hits/misses, gfp iteration counts, engine retry totals -- so a
perf regression can be told apart from a workload change (same seconds,
different counters means the workload moved; same counters, different
seconds means the code got slower).  Every record is additionally
stamped with the measure ``backend`` it ran under and the ``points``
count of its system (``None`` for sweep records that span many systems)
-- additive fields, so ``tools/tracediff`` keeps accepting artifacts
written before they existed.  ``--trace PATH`` additionally streams the
whole run as ``repro-trace/1`` JSONL for ``tools/tracereport``, and
``--metrics PATH`` streams one ``repro-metrics/1`` snapshot per
workload (labelled by benchmark) for ``tools/reprotop`` /
``tracereport --metrics``.

The word-array records (``wordarray_measure``/``wordarray_gfp``) run the
same >=100k-point workload under ``bitmask`` and ``wordarray`` and
assert the results identical before reporting either timing; they are
skipped (with a note in ``skipped``) when numpy is unavailable.

All probabilities in the report stay exact: Fractions are serialised as
``"p/q"`` strings.  Wall-clock seconds are, of course, floats.
"""

from __future__ import annotations

import argparse
import os
import platform
import sys
import time
import traceback
from fractions import Fraction
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "benchmarks"))

from repro.attack import guarantee_sweep, parallel_guarantee_sweep  # noqa: E402
from repro.obs import (  # noqa: E402
    MetricsRecorder,
    MetricsSnapshotWriter,
    MultiRecorder,
    take_snapshot,
    use_recorder,
)
from repro.probability import (  # noqa: E402
    get_default_backend,
    kernel_totals,
    reset_kernel_totals,
    use_backend,
    wordmask,
)
from repro.reporting import write_bench_json  # noqa: E402

import bench_wordarray  # noqa: E402
from bench_scalability import pipeline  # noqa: E402

#: Baselines carried forward across reports so every BENCH_<n>.json is
#: self-contained: the 10-toss scalability pipeline at the PR 1 tip
#: (commit 0bc943a, before the bitmask measure engine), the same
#: pipeline as measured in BENCH_2.json once the bitmask engine landed,
#: and as measured in BENCH_4.json (tracing instrumentation in place) --
#: the no-regression reference for the word-array PR.
BASELINES = {
    "scalability_pipeline_tosses10_pre_pr_seconds": 0.574,
    "scalability_pipeline_tosses10_bench2_seconds": 0.1822,
    "scalability_pipeline_tosses10_bench4_seconds": 0.1588,
}

PRE_PR_PIPELINE_SECONDS = BASELINES["scalability_pipeline_tosses10_pre_pr_seconds"]


#: ``--metrics`` destination, installed by :func:`main`; ``_timed``
#: appends one labelled ``repro-metrics/1`` snapshot per workload.
_SNAPSHOTS: MetricsSnapshotWriter = None


def _timed(function, repeats: int, trace=None, label: str = ""):
    """Best-of-``repeats`` wall time, the (stable) return value, and the
    observability counters of the final repeat.

    Each repeat runs under a fresh :class:`MetricsRecorder` (fanned out
    to ``trace`` when given) with the process-wide kernel totals zeroed,
    so the reported counters describe exactly one execution of the
    workload.  The workloads are deterministic, so every repeat produces
    the same counters; timing keeps best-of to shed scheduler noise.
    With ``--metrics`` in effect, the final repeat's aggregates are also
    written as one ``repro-metrics/1`` snapshot labelled ``label``.
    """
    best = None
    value = None
    counters = {}
    metrics = None
    for _ in range(repeats):
        reset_kernel_totals()
        metrics = MetricsRecorder()
        recorder = metrics if trace is None else MultiRecorder([metrics, trace])
        with use_recorder(recorder):
            start = time.perf_counter()
            value = function()
            elapsed = time.perf_counter() - start
        counters = dict(metrics.snapshot()["counters"])
        counters.update(kernel_totals())
        if best is None or elapsed < best:
            best = elapsed
    if _SNAPSHOTS is not None and metrics is not None:
        _SNAPSHOTS.write(take_snapshot(metrics, label=label))
    return best, value, counters


def bench_pipeline(records, tosses: int, backend: str, repeats: int, trace) -> None:
    """The full scalability pipeline under one measure backend."""
    with use_backend(backend) as active:
        seconds, (points, interval, clocked), counters = _timed(
            lambda: pipeline(tosses), repeats, trace,
            label=f"scalability_pipeline[{backend}]",
        )
    records.append(
        {
            "name": "scalability_pipeline",
            "backend": active,
            "points": points,
            "params": {"tosses": tosses},
            "system": {"runs": 2**tosses, "points": points},
            "seconds": round(seconds, 4),
            "counters": counters,
            "results": {"interval": interval, "clocked": sorted(clocked)},
        }
    )


def bench_sweep(records, messengers, repeats: int, trace) -> None:
    """Serial vs parallel guarantee sweep on identical task lists."""
    losses = [Fraction(1, 2)]
    serial_seconds, serial_rows, serial_counters = _timed(
        lambda: guarantee_sweep(messengers, losses), repeats, trace,
        label="guarantee_sweep_serial",
    )
    parallel_seconds, parallel_rows, parallel_counters = _timed(
        lambda: parallel_guarantee_sweep(messengers, losses), repeats, trace,
        label="guarantee_sweep_parallel",
    )
    if serial_rows != parallel_rows:
        raise AssertionError("parallel sweep rows differ from serial rows")
    system_size = {"tasks": len(serial_rows)}
    records.append(
        {
            "name": "guarantee_sweep_serial",
            "backend": get_default_backend(),
            # one row per (messengers, loss) system -- no single size
            "points": None,
            "params": {"messengers": list(messengers), "losses": losses},
            "system": system_size,
            "seconds": round(serial_seconds, 4),
            "counters": serial_counters,
            "results": {"rows": serial_rows},
        }
    )
    records.append(
        {
            "name": "guarantee_sweep_parallel",
            "backend": get_default_backend(),
            "points": None,
            "params": {"messengers": list(messengers), "losses": losses},
            "system": system_size,
            "seconds": round(parallel_seconds, 4),
            # Workers run in their own processes with the default
            # NullRecorder, so parent-side counters only cover the pool
            # bookkeeping -- see docs/observability.md.
            "counters": parallel_counters,
            "results": {"rows_match_serial": True},
        }
    )


def bench_common_knowledge(records, messengers: int, repeats: int, trace) -> None:
    """Mask-based model checking: C^eps phi_CA on a CA2 system."""
    from repro.attack import build_ca2
    from repro.core import standard_assignments
    from repro.logic import CommonKnowsProb, Model, Prop

    def workload():
        attack = build_ca2(messengers, Fraction(1, 2))
        post = standard_assignments(attack.psys)["post"]
        model = Model(post, {"coord": attack.coordinated})
        formula = CommonKnowsProb(
            tuple(attack.group), Fraction(1, 2), Prop("coord")
        )
        return len(attack.psys.system.points), len(model.extension(formula))

    seconds, (points, extension_size), counters = _timed(
        workload, repeats, trace, label="common_knowledge_ca2"
    )
    records.append(
        {
            "name": "common_knowledge_ca2",
            "backend": get_default_backend(),
            "points": points,
            "params": {"messengers": messengers},
            "system": {"points": points},
            "seconds": round(seconds, 4),
            "counters": counters,
            "results": {"extension_size": extension_size},
        }
    )


def bench_robust_sweep(records, messengers, repeats: int, trace) -> None:
    """The fault-tolerant engine under seeded chaos, rows pinned to serial.

    Exercises the retry path so the report carries real
    ``engine.retries``/``engine.raised`` counters, and asserts that the
    chaos run still returns exactly the serial sweep's rows.
    """
    from repro.attack.sweep import sweep_row_of, sweep_tasks
    from repro.robustness.engine import RetryPolicy, run_tasks
    from repro.robustness.faults import FaultInjectingTask, FaultPlan

    losses = [Fraction(1, 2)]
    tasks = sweep_tasks(messengers, losses)
    plan = FaultPlan.from_seed(
        seed=11, task_count=len(tasks), kinds=("raise",), rate=0.5
    )

    def workload():
        return run_tasks(
            FaultInjectingTask(sweep_row_of, plan),
            tasks,
            max_workers=1,
            policy=RetryPolicy(max_attempts=4, base_delay=0.0),
            sleep=lambda _seconds: None,
        )

    seconds, rows, counters = _timed(
        workload, repeats, trace, label="robust_sweep_chaos"
    )
    if rows != [sweep_row_of(task) for task in tasks]:
        raise AssertionError("chaos sweep rows differ from serial rows")
    records.append(
        {
            "name": "robust_sweep_chaos",
            "backend": get_default_backend(),
            "points": None,
            "params": {
                "messengers": list(messengers),
                "losses": losses,
                "fault_seed": 11,
                "faults": len(plan),
            },
            "system": {"tasks": len(tasks)},
            "seconds": round(seconds, 4),
            "counters": counters,
            "results": {"rows_match_serial": True},
        }
    )


def bench_audit_overhead(records, messengers, repeats: int) -> None:
    """The audit bill: checkpointed sweep with and without the Merkle bundle.

    ``audit=True`` rebuilds every row's attack system in the parent and
    re-derives its threshold derivation before chaining the leaf, so the
    overhead is real work, not hashing -- this record is why auditing
    defaults off.  Rows are asserted identical first (the audit path
    must never change results), and the derived ``audit_overhead_ratio``
    pins the cost PR-over-PR.
    """
    import shutil
    import tempfile

    from repro.robustness import robust_guarantee_sweep

    losses = [Fraction(1, 2)]

    def best_of(audit: bool):
        best = None
        rows = None
        for _ in range(repeats):
            scratch = tempfile.mkdtemp(prefix="bench-audit-")
            try:
                start = time.perf_counter()
                rows = robust_guarantee_sweep(
                    messengers,
                    losses,
                    max_workers=1,
                    checkpoint_path=os.path.join(scratch, "sweep.jsonl"),
                    audit=audit,
                )
                elapsed = time.perf_counter() - start
            finally:
                shutil.rmtree(scratch, ignore_errors=True)
            if best is None or elapsed < best:
                best = elapsed
        return best, rows

    plain_seconds, plain_rows = best_of(False)
    audited_seconds, audited_rows = best_of(True)
    if plain_rows != audited_rows:
        raise AssertionError("audited sweep rows differ from unaudited rows")
    for audit, seconds in ((False, plain_seconds), (True, audited_seconds)):
        records.append(
            {
                "name": "audit_overhead_sweep",
                "backend": get_default_backend(),
                "points": None,
                "params": {
                    "messengers": list(messengers),
                    "losses": losses,
                    "audit": audit,
                },
                "system": {"tasks": len(plain_rows)},
                "seconds": round(seconds, 4),
                "counters": {},
                "results": {"rows_match_unaudited": True},
            }
        )


def bench_explain_dag(records, messengers, losses, repeats: int, trace) -> None:
    """Hash-consed ``repro-explain/2`` vs ``/1`` on a sweep's derivations.

    Builds the Section 5 threshold derivation behind every row of a
    guarantee sweep (>=100 rows at full size), encodes them all into one
    ``/2`` document via :meth:`DerivationStore.encode_many`, and pins
    both the exact canonical-byte sizes and losslessness (every decoded
    derivation fingerprint-identical to its source).  The derived
    ``explain_dag_compression`` ratio is the acceptance number: ``/1``
    bytes over ``/2`` bytes, > 1 means the DAG encoding is smaller.
    """
    from repro.attack import row_provenance_derivation
    from repro.attack.sweep import sweep_tasks
    from repro.obs import DerivationStore, encoded_size
    from repro.obs.derivstore import decode_derivations

    tasks = sweep_tasks(messengers, losses)

    def workload():
        derivations = [
            row_provenance_derivation(builder(count, loss))
            for _name, builder, count, loss, _epsilon in tasks
        ]
        store = DerivationStore()
        document = store.encode_many(derivations)
        return derivations, store, document

    seconds, (derivations, store, document), counters = _timed(
        workload, repeats, trace, label="explain_dag_encode"
    )
    tree_bytes = sum(encoded_size(d.json_ready()) for d in derivations)
    dag_bytes = encoded_size(document)
    decoded = decode_derivations(document)
    if [d.fingerprint() for d in decoded] != [
        d.fingerprint() for d in derivations
    ]:
        raise AssertionError("repro-explain/2 round trip lost a derivation")
    records.append(
        {
            "name": "explain_dag_encode",
            "backend": get_default_backend(),
            "points": None,
            "params": {
                "messengers": list(messengers),
                "losses": losses,
                "rows": len(tasks),
            },
            "system": {"tasks": len(tasks)},
            "seconds": round(seconds, 4),
            "counters": counters,
            "results": {
                "tree_bytes": tree_bytes,
                "dag_bytes": dag_bytes,
                "nodes_added": store.nodes_added,
                "nodes_deduped": store.nodes_deduped,
                "lossless_round_trip": True,
                "dag_smaller": dag_bytes < tree_bytes,
            },
        }
    )


def bench_wordarray_measure(records, params, n_queries: int, repeats: int, trace) -> None:
    """Non-powerset interval measures at ``n_atoms * block`` outcomes.

    The space is built per backend (backend choice latches at
    construction) with ``interval_cache_maxsize=1``, so the ``n_queries``
    distinct masks thrash the LRU and every repeat re-runs the kernel
    instead of replaying the cache.  Intervals are asserted identical
    across backends before either record is written.
    """
    n_outcomes = params["n_atoms"] * params["block"]
    timings = {}
    intervals = {}
    for backend in ("bitmask", "wordarray"):
        with use_backend(backend) as active:
            space = bench_wordarray.build_block_space(
                params["n_atoms"], params["block"]
            )
            masks = bench_wordarray.measure_query_masks(space, n_queries)
            seconds, value, counters = _timed(
                lambda: bench_wordarray.measure_workload(space, masks),
                repeats,
                trace,
                label=f"wordarray_measure[{backend}]",
            )
        timings[active] = (seconds, counters)
        intervals[active] = value
    if intervals["bitmask"] != intervals["wordarray"]:
        raise AssertionError("wordarray intervals differ from bitmask intervals")
    for backend, (seconds, counters) in timings.items():
        records.append(
            {
                "name": "wordarray_measure",
                "backend": backend,
                "points": n_outcomes,
                "params": {
                    "n_atoms": params["n_atoms"],
                    "block": params["block"],
                    "queries": n_queries,
                },
                "system": {"outcomes": n_outcomes, "atoms": params["n_atoms"]},
                "seconds": round(seconds, 4),
                "counters": counters,
                "results": {"intervals_match_bitmask": True},
            }
        )


def bench_wordarray_gfp(records, params, repeats: int, trace) -> None:
    """Common-knowledge gfp on a flat >=100k-point two-agent system.

    The system and assignment are built once per backend outside the
    timer; each repeat builds a fresh :class:`Model` (no extension memo
    carry-over), so best-of measures the steady-state fixpoint folds.
    Extension masks are asserted identical across backends.
    """
    timings = {}
    extension = {}
    for backend in ("bitmask", "wordarray"):
        with use_backend(backend) as active:
            psys = bench_wordarray.build_flat_system(
                params["n_leaves"], params["chain_block"], params["cutoff"]
            )
            assignment = bench_wordarray.flat_gfp_assignment(psys)
            seconds, (mask, survivors), counters = _timed(
                lambda: bench_wordarray.flat_gfp_workload(psys, assignment),
                repeats,
                trace,
                label=f"wordarray_gfp[{backend}]",
            )
        timings[active] = (seconds, counters, survivors)
        extension[active] = mask
    if extension["bitmask"] != extension["wordarray"]:
        raise AssertionError("wordarray gfp extension differs from bitmask")
    points = params["n_leaves"] * 2
    for backend, (seconds, counters, survivors) in timings.items():
        records.append(
            {
                "name": "wordarray_gfp",
                "backend": backend,
                "points": points,
                "params": {
                    "n_leaves": params["n_leaves"],
                    "chain_block": params["chain_block"],
                    "cutoff": params["cutoff"],
                },
                "system": {"points": points, "agents": 2},
                "seconds": round(seconds, 4),
                "counters": counters,
                "results": {
                    "survivors": survivors,
                    "extension_matches_bitmask": True,
                },
            }
        )


def bench_obs_overhead(records, tosses: int, repeats: int) -> None:
    """The telemetry bill: pipeline under NullRecorder vs MetricsRecorder.

    The instrumented run aggregates in memory only (no trace fan-out --
    streaming JSONL is priced separately by ``--trace`` runs), so the
    derived ``obs_overhead_ratio`` isolates what the recorder protocol
    itself costs a pure computation.  Target: within 3% of the
    uninstrumented baseline.  Results are asserted identical first.
    """

    def best_of(instrumented: bool):
        best = None
        value = None
        for _ in range(repeats):
            reset_kernel_totals()
            recorder = MetricsRecorder() if instrumented else None
            start = time.perf_counter()
            if recorder is None:
                value = pipeline(tosses)
            else:
                with use_recorder(recorder):
                    value = pipeline(tosses)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        return best, value

    null_seconds, null_value = best_of(False)
    metrics_seconds, metrics_value = best_of(True)
    if null_value != metrics_value:
        raise AssertionError("instrumented pipeline results differ from baseline")
    points = null_value[0]
    for recorder_name, seconds in (
        ("null", null_seconds),
        ("metrics", metrics_seconds),
    ):
        records.append(
            {
                "name": "obs_overhead_pipeline",
                "backend": get_default_backend(),
                "points": points,
                "params": {"tosses": tosses, "recorder": recorder_name},
                "system": {"runs": 2**tosses, "points": points},
                "seconds": round(seconds, 4),
                "counters": {},
                "results": {"matches_uninstrumented": True},
            }
        )


def _overhead_seconds(records, recorder_name: str):
    return next(
        (
            record["seconds"]
            for record in records
            if record["name"] == "obs_overhead_pipeline"
            and record["params"].get("recorder") == recorder_name
        ),
        None,
    )


def _record_seconds(records, name: str, backend: str):
    return next(
        (
            record["seconds"]
            for record in records
            if record["name"] == name and record["backend"] == backend
        ),
        None,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default="BENCH_10.json", help="where to write the report"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced parameters for CI (small systems, one repeat)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="also stream the whole run as repro-trace/1 JSONL to PATH",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        help=(
            "also write one repro-metrics/1 snapshot per workload to PATH "
            "(labelled by benchmark name)"
        ),
    )
    args = parser.parse_args(argv)

    tosses = 6 if args.smoke else 10
    sweep_messengers = [1, 2] if args.smoke else [1, 2, 4, 7]
    ck_messengers = 2 if args.smoke else 4
    repeats = 1 if args.smoke else 5
    wordarray_params = bench_wordarray.SMOKE if args.smoke else bench_wordarray.FULL
    wordarray_queries = 8 if args.smoke else 24
    wordarray_repeats = 1 if args.smoke else 3
    audit_messengers = [1, 2] if args.smoke else [1, 2, 3]
    explain_messengers = [1, 2] if args.smoke else [1, 2, 3, 4, 5, 6]
    explain_losses = (
        [Fraction(1, 2)]
        if args.smoke
        else [
            Fraction(1, 2),
            Fraction(1, 3),
            Fraction(1, 4),
            Fraction(2, 3),
            Fraction(3, 4),
            Fraction(1, 5),
        ]
    )

    trace = None
    if args.trace:
        from repro.obs import TraceRecorder

        trace = TraceRecorder(args.trace)
    global _SNAPSHOTS
    if args.metrics:
        _SNAPSHOTS = MetricsSnapshotWriter(args.metrics)

    records: list = []
    errors: list = []
    skipped: list = []
    runners = [
        lambda: bench_pipeline(records, tosses, "bitmask", repeats, trace),
        lambda: bench_pipeline(records, tosses, "naive", repeats, trace),
        lambda: bench_pipeline(records, tosses, "wordarray", repeats, trace),
        lambda: bench_sweep(records, sweep_messengers, repeats, trace),
        lambda: bench_common_knowledge(records, ck_messengers, repeats, trace),
        lambda: bench_robust_sweep(records, sweep_messengers, repeats, trace),
        lambda: bench_obs_overhead(records, tosses, repeats),
        lambda: bench_audit_overhead(records, audit_messengers, repeats),
        lambda: bench_explain_dag(
            records, explain_messengers, explain_losses, repeats, trace
        ),
    ]
    if wordmask.available():
        runners.extend(
            [
                lambda: bench_wordarray_measure(
                    records, wordarray_params, wordarray_queries,
                    wordarray_repeats, trace,
                ),
                lambda: bench_wordarray_gfp(
                    records, wordarray_params, wordarray_repeats, trace
                ),
            ]
        )
    else:
        skipped.append("wordarray_measure/wordarray_gfp: numpy unavailable")
    for runner in runners:
        try:
            runner()
        except Exception:  # noqa: BLE001 - report every failure, then exit 1
            errors.append(traceback.format_exc())
    if trace is not None:
        trace.close()
    if _SNAPSHOTS is not None:
        _SNAPSHOTS.close()
        _SNAPSHOTS = None

    payload = {
        "schema": "repro-bench/2",
        "pr": 10,
        "generated_by": "benchmarks/collect.py"
        + (" --smoke" if args.smoke else ""),
        "smoke": args.smoke,
        "environment": {
            "python": platform.python_version(),
            # one core means the parallel sweep can only tie the serial
            # one; the record is still useful as an overhead measurement
            "cpu_count": os.cpu_count(),
            "numpy": wordmask.available(),
        },
        "default_backend": get_default_backend(),
        "baselines": dict(BASELINES),
        "benchmarks": records,
        "skipped": skipped,
        "errors": errors,
    }
    derived = {}
    bitmask_pipeline = _record_seconds(records, "scalability_pipeline", "bitmask")
    if not args.smoke and bitmask_pipeline:
        derived["pipeline_speedup_vs_pre_pr"] = round(
            PRE_PR_PIPELINE_SECONDS / bitmask_pipeline, 2
        )
    null_seconds = _overhead_seconds(records, "null")
    metrics_seconds = _overhead_seconds(records, "metrics")
    if null_seconds and metrics_seconds:
        derived["obs_overhead_ratio"] = round(metrics_seconds / null_seconds, 4)
    audit_seconds = {
        record["params"]["audit"]: record["seconds"]
        for record in records
        if record["name"] == "audit_overhead_sweep"
    }
    if audit_seconds.get(False) and audit_seconds.get(True):
        derived["audit_overhead_ratio"] = round(
            audit_seconds[True] / audit_seconds[False], 4
        )
    explain_dag = next(
        (r["results"] for r in records if r["name"] == "explain_dag_encode"), None
    )
    if explain_dag and explain_dag["dag_bytes"]:
        derived["explain_dag_compression"] = round(
            explain_dag["tree_bytes"] / explain_dag["dag_bytes"], 4
        )
    for name, key in (
        ("wordarray_measure", "wordarray_measure_speedup_vs_bitmask"),
        ("wordarray_gfp", "wordarray_gfp_speedup_vs_bitmask"),
    ):
        bitmask_seconds = _record_seconds(records, name, "bitmask")
        wordarray_seconds = _record_seconds(records, name, "wordarray")
        if bitmask_seconds and wordarray_seconds:
            derived[key] = round(bitmask_seconds / wordarray_seconds, 2)
    if derived:
        payload["derived"] = derived
    text = write_bench_json(args.output, payload)
    print(text)
    if errors:
        print(f"\n{len(errors)} benchmark(s) FAILED", file=sys.stderr)
        for error in errors:
            print(error, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
