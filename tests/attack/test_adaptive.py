"""The adaptive CA1 extension (end of Section 8)."""

from fractions import Fraction

import pytest

from repro.attack import (
    achieves,
    assignment_for,
    build_ca1,
    build_ca1_adaptive,
    doomed_but_attacking_points,
    proposition11_row,
    run_level_probability,
)

EPS = Fraction(4, 5)


@pytest.fixture(scope="module")
def adaptive():
    return build_ca1_adaptive(messengers=3)


@pytest.fixture(scope="module")
def plain():
    return build_ca1(messengers=3)


class TestAdaptiveCA1:
    def test_pathology_removed(self, adaptive, plain):
        assert doomed_but_attacking_points(plain)
        assert doomed_but_attacking_points(adaptive) == ()

    def test_abort_turns_failure_into_coordination(self, adaptive):
        # runs where A heard "no news": both refrain -> coordinated
        for run in adaptive.psys.system.runs:
            final_a = repr(run.states[-1].local_states[0])
            if "heard-b-no-news" in final_a:
                point = next(iter(run.points()))
                assert not adaptive.a_attacks.holds_at(point)
                assert adaptive.coordinated.holds_at(point)

    def test_lifts_to_post_level(self, adaptive, plain):
        assert not achieves(plain, assignment_for(plain, "post"), EPS)
        assert achieves(adaptive, assignment_for(adaptive, "post"), EPS)

    def test_still_not_fut_level(self, adaptive):
        # adaptivity cannot beat an opponent who knows the whole past
        assert not achieves(adaptive, assignment_for(adaptive, "fut"), EPS)

    def test_still_attacks_on_good_runs(self, adaptive):
        attacking_runs = [
            run
            for run in adaptive.psys.system.runs
            if adaptive.a_attacks.holds_at(next(iter(run.points())))
        ]
        assert attacking_runs  # not the trivial never-attack protocol

    def test_run_level_improves(self, adaptive, plain):
        # aborting on certain failure can only help coordination
        assert run_level_probability(adaptive) >= run_level_probability(plain)

    def test_row_shape(self, adaptive):
        row = proposition11_row(adaptive, EPS)
        assert row.protocol == "CA1-adaptive"
        assert row.prior and row.post and not row.fut
        assert row.certain_failure_count == 0

    def test_paper_scale(self):
        adaptive = build_ca1_adaptive(messengers=10)
        assert achieves(
            adaptive, assignment_for(adaptive, "post"), Fraction(99, 100)
        )
