"""Model checking ``L(Phi)`` over finite probabilistic systems.

A :class:`Model` bundles a probabilistic system, a probability assignment
``P`` (needed to interpret ``Pr_i``), and a valuation mapping primitive
proposition names to facts.  Checking computes formula *extensions* --
the set of points where a formula holds -- bottom-up with memoisation; the
greatest fixed points of (probabilistic) common knowledge iterate on
extensions directly.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from ..core.assignments import ProbabilityAssignment
from ..core.facts import Fact
from ..core.model import Point, System
from ..errors import LogicError
from ..trees.probabilistic_system import ProbabilisticSystem
from .syntax import (
    And,
    CommonKnows,
    CommonKnowsProb,
    EveryoneKnows,
    EveryoneKnowsProb,
    FalseFormula,
    Formula,
    Iff,
    Implies,
    Knows,
    Next,
    Not,
    Or,
    PrAtLeast,
    PrAtMost,
    Prop,
    TrueFormula,
    Until,
)

PointSet = FrozenSet[Point]


class Model:
    """An interpreted system: trees + probability assignment + valuation."""

    def __init__(
        self,
        assignment: ProbabilityAssignment,
        valuation: Mapping[str, Fact],
    ) -> None:
        self.assignment = assignment
        self.psys: ProbabilisticSystem = assignment.psys
        self.system: System = self.psys.system
        self.valuation: Dict[str, Fact] = dict(valuation)
        self._extensions: Dict[Formula, PointSet] = {}

    # ------------------------------------------------------------------
    # Core evaluation
    # ------------------------------------------------------------------

    def extension(self, formula: Formula) -> PointSet:
        """The set of points satisfying ``formula`` (memoised)."""
        if formula in self._extensions:
            return self._extensions[formula]
        result = self._compute_extension(formula)
        self._extensions[formula] = result
        return result

    def holds(self, formula: Formula, point: Point) -> bool:
        """``(P, c) |= formula``."""
        return point in self.extension(formula)

    def valid(self, formula: Formula) -> bool:
        """True iff the formula holds at every point of the system."""
        return self.extension(formula) == frozenset(self.system.points)

    def fact_of(self, formula: Formula) -> Fact:
        """The formula's extension wrapped as a :class:`Fact`."""
        return Fact.from_points(self.extension(formula), name=str(formula))

    def with_assignment(self, assignment: ProbabilityAssignment) -> "Model":
        """The same valuation interpreted under a different assignment.

        The probability assignment is exactly what Sections 6-8 vary; this
        constructor is how the coordinated-attack analysis swaps ``P_prior``
        / ``P_post`` / ``P_fut`` while holding everything else fixed.
        """
        return Model(assignment, self.valuation)

    # ------------------------------------------------------------------
    # Recursive cases
    # ------------------------------------------------------------------

    def _all_points(self) -> PointSet:
        return frozenset(self.system.points)

    def _compute_extension(self, formula: Formula) -> PointSet:
        if isinstance(formula, Prop):
            try:
                fact = self.valuation[formula.name]
            except KeyError:
                raise LogicError(f"no valuation for proposition {formula.name!r}") from None
            return frozenset(fact.restricted_to(self.system.points))
        if isinstance(formula, TrueFormula):
            return self._all_points()
        if isinstance(formula, FalseFormula):
            return frozenset()
        if isinstance(formula, Not):
            return self._all_points() - self.extension(formula.sub)
        if isinstance(formula, And):
            return self.extension(formula.left) & self.extension(formula.right)
        if isinstance(formula, Or):
            return self.extension(formula.left) | self.extension(formula.right)
        if isinstance(formula, Implies):
            return (self._all_points() - self.extension(formula.left)) | self.extension(
                formula.right
            )
        if isinstance(formula, Iff):
            left = self.extension(formula.left)
            right = self.extension(formula.right)
            both = left & right
            neither = self._all_points() - (left | right)
            return both | neither
        if isinstance(formula, Knows):
            return self._knowledge_extension(formula.agent, self.extension(formula.sub))
        if isinstance(formula, PrAtLeast):
            fact = Fact.from_points(self.extension(formula.sub))
            return frozenset(
                point
                for point in self.system.points
                if self.assignment.inner_probability(formula.agent, point, fact)
                >= formula.alpha
            )
        if isinstance(formula, PrAtMost):
            fact = Fact.from_points(self.extension(formula.sub))
            return frozenset(
                point
                for point in self.system.points
                if self.assignment.outer_probability(formula.agent, point, fact)
                <= formula.beta
            )
        if isinstance(formula, Next):
            sub = self.extension(formula.sub)
            return frozenset(
                point for point in self.system.points if point.successor() in sub
            )
        if isinstance(formula, Until):
            return self._until_extension(formula)
        if isinstance(formula, EveryoneKnows):
            return self._everyone_extension(formula.group, self.extension(formula.sub))
        if isinstance(formula, CommonKnows):
            return self._gfp(
                self.extension(formula.sub),
                lambda target: self._everyone_extension(formula.group, target),
            )
        if isinstance(formula, EveryoneKnowsProb):
            return self._everyone_prob_extension(
                formula.group, formula.alpha, self.extension(formula.sub)
            )
        if isinstance(formula, CommonKnowsProb):
            return self._gfp(
                self.extension(formula.sub),
                lambda target: self._everyone_prob_extension(
                    formula.group, formula.alpha, target
                ),
            )
        raise LogicError(f"unknown formula constructor {type(formula).__name__}")

    # ------------------------------------------------------------------
    # Knowledge helpers
    # ------------------------------------------------------------------

    def _knowledge_extension(self, agent: int, target: PointSet) -> PointSet:
        return frozenset(
            point
            for point in self.system.points
            if self.system.knowledge_set(agent, point) <= target
        )

    def _everyone_extension(self, group: Iterable[int], target: PointSet) -> PointSet:
        result = self._all_points()
        for agent in group:
            result &= self._knowledge_extension(agent, target)
        return result

    def _prob_knowledge_extension(self, agent: int, alpha, target: PointSet) -> PointSet:
        """Extension of ``K_i^alpha`` applied to an extension (not a formula)."""
        fact = Fact.from_points(target)
        satisfying = frozenset(
            point
            for point in self.system.points
            if self.assignment.inner_probability(agent, point, fact) >= alpha
        )
        return self._knowledge_extension(agent, satisfying)

    def _everyone_prob_extension(
        self, group: Iterable[int], alpha, target: PointSet
    ) -> PointSet:
        result = self._all_points()
        for agent in group:
            result &= self._prob_knowledge_extension(agent, alpha, target)
        return result

    def _gfp(self, sub_extension: PointSet, everyone) -> PointSet:
        """Greatest fixed point of ``X == E(phi & X)`` by downward iteration.

        The operator is monotone and the lattice of point sets finite, so
        iteration from the top converges; the result is the greatest fixed
        point, matching the Section 8 definition of (probabilistic) common
        knowledge.
        """
        current = self._all_points()
        while True:
            updated = everyone(sub_extension & current)
            if updated == current:
                return current
            current = updated

    # ------------------------------------------------------------------
    # Until
    # ------------------------------------------------------------------

    def _until_extension(self, formula: Until) -> PointSet:
        left = self.extension(formula.left)
        right = self.extension(formula.right)
        satisfied: set = set()
        for run in self.system.runs:
            run_points = list(run.points())
            holds_from = [False] * len(run_points)
            for index in range(len(run_points) - 1, -1, -1):
                point = run_points[index]
                if point in right:
                    holds_from[index] = True
                elif point in left and index + 1 < len(run_points):
                    holds_from[index] = holds_from[index + 1]
            satisfied.update(
                point for index, point in enumerate(run_points) if holds_from[index]
            )
        return frozenset(satisfied)
