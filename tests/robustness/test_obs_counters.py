"""Chaos accounting: obs counters must equal the engine's attempt log.

The sweep engine already proves (tests/robustness/test_engine.py) that
seeded faults do not change results.  This suite proves the *telemetry*
is exact under the same chaos: every ``engine.*`` counter and every
``task_attempt`` trace event corresponds one-to-one with an entry of
the engine's own :class:`TaskAttempt` log -- no attempt is dropped,
double-counted, or misattributed by the observability layer.
"""

import os
import shutil
from fractions import Fraction

from repro.attack.sweep import guarantee_sweep, sweep_row_of, sweep_tasks
from repro.obs import MetricsRecorder, MultiRecorder, TraceRecorder, read_trace, use_recorder
from repro.robustness import RetryPolicy, run_tasks
from repro.testing import FaultInjectingTask, FaultPlan

MESSENGERS = [1, 2]
LOSSES = [Fraction(1, 2)]
POLICY = RetryPolicy(max_attempts=4, base_delay=0.0, seed=5)


def _export_artifact(path):
    """Copy a trace into CHAOS_ARTIFACT_DIR for the CI artifact."""
    target_dir = os.environ.get("CHAOS_ARTIFACT_DIR")
    if not target_dir:
        return
    os.makedirs(target_dir, exist_ok=True)
    shutil.copy(path, os.path.join(target_dir, os.path.basename(path)))


def _chaos_run(tmp_path, plan):
    """One seeded chaos sweep; returns (rows, metrics, trace records)."""
    tasks = sweep_tasks(MESSENGERS, LOSSES)
    trace_path = tmp_path / "chaos-trace.jsonl"
    metrics = MetricsRecorder()
    attempt_log = {}

    def spy(task, context):
        attempt_log.setdefault(context.index, []).append(context.attempt)
        return FaultInjectingTask(sweep_row_of, plan)(task, context)

    spy.wants_context = True

    trace = TraceRecorder(trace_path)
    with use_recorder(MultiRecorder([metrics, trace])):
        rows = run_tasks(
            spy,
            tasks,
            max_workers=1,
            policy=POLICY,
            sleep=lambda _seconds: None,
        )
    trace.close()
    _export_artifact(trace_path)
    return tasks, rows, attempt_log, metrics, read_trace(trace_path)


def test_counters_match_the_attempt_log_exactly(tmp_path):
    plan = FaultPlan.from_seed(
        seed=13, task_count=6, kinds=("raise",), rate=0.6, max_faulty_attempts=3
    )
    tasks, rows, attempt_log, metrics, records = _chaos_run(tmp_path, plan)

    # Chaos never changes results (the engine's own guarantee) ...
    assert rows == [sweep_row_of(task) for task in tasks]

    # ... and the counters agree with what actually executed.
    executed = sum(len(attempts) for attempts in attempt_log.values())
    failed = len(plan)  # every scheduled raise-fault consumed one attempt
    counters = metrics.counters
    assert counters["engine.attempts"] == executed
    assert counters["engine.tasks_ok"] == len(tasks)
    assert counters["engine.raised"] == failed
    assert counters["engine.retries"] == failed
    assert counters["event:task_attempt"] == executed
    assert "engine.timeouts" not in counters
    assert "engine.worker_lost" not in counters


def test_trace_events_mirror_task_attempts_one_to_one(tmp_path):
    plan = FaultPlan.from_seed(
        seed=29, task_count=6, kinds=("raise",), rate=0.5, max_faulty_attempts=2
    )
    tasks, _rows, attempt_log, _metrics, records = _chaos_run(tmp_path, plan)

    events = [
        record["fields"]
        for record in records
        if record["type"] == "event" and record["kind"] == "task_attempt"
    ]
    observed = {}
    for fields in events:
        observed.setdefault(fields["index"], []).append(fields["attempt"])
    assert observed == attempt_log

    # Outcomes follow the plan: scheduled attempts raised, the rest ok.
    for fields in events:
        scheduled = plan.fault_for(fields["index"], fields["attempt"])
        assert fields["outcome"] == ("raised" if scheduled else "ok")
        if scheduled:
            assert "InjectedFault" in fields["error"]
            # The recorded backoff is the policy's deterministic delay.
            assert fields["backoff"] == POLICY.backoff_delay(
                fields["index"], fields["attempt"]
            )


def test_fault_free_run_counts_one_attempt_per_task(tmp_path):
    tasks, rows, attempt_log, metrics, records = _chaos_run(tmp_path, FaultPlan())
    assert metrics.counters["engine.attempts"] == len(tasks)
    assert metrics.counters["engine.tasks_ok"] == len(tasks)
    assert "engine.retries" not in metrics.counters
    assert rows == guarantee_sweep(MESSENGERS, LOSSES)
