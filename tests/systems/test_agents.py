"""Agent protocol building blocks."""

from fractions import Fraction

import pytest

from repro.errors import InvalidMeasureError
from repro.systems import (
    CoinTossingAgent,
    FunctionAgent,
    IdleAgent,
    RepeatedCoinTosser,
    act,
    certainly,
    chance,
)


class TestActionHelpers:
    def test_act_packs_messages(self):
        from repro.systems import Message

        message = Message(0, 1, "hi")
        assert act("state", message) == ("state", (message,))

    def test_certainly_is_point_mass(self):
        ((probability, action),) = certainly("s")
        assert probability == 1
        assert action == ("s", ())

    def test_chance_validates_total(self):
        with pytest.raises(InvalidMeasureError):
            chance([(Fraction(1, 3), act("a"))])

    def test_chance_preserves_branches(self):
        branches = chance(
            [(Fraction(1, 4), act("a")), (Fraction(3, 4), act("b"))]
        )
        assert [probability for probability, _ in branches] == [
            Fraction(1, 4),
            Fraction(3, 4),
        ]


class TestIdleAgent:
    def test_never_changes(self):
        agent = IdleAgent("zzz")
        state = agent.initial_state(None)
        assert state == "zzz"
        assert agent.step(state, (), 5) == certainly("zzz")


class TestCoinTossingAgent:
    def test_tosses_once_at_configured_round(self):
        agent = CoinTossingAgent(Fraction(1, 3), toss_round=2)
        state = agent.initial_state(None)
        assert agent.step(state, (), 0) == certainly("ready")
        branches = agent.step(state, (), 2)
        outcomes = {action[0]: probability for probability, action in branches}
        assert outcomes == {
            "saw-heads": Fraction(1, 3),
            "saw-tails": Fraction(2, 3),
        }

    def test_stays_settled_after_toss(self):
        agent = CoinTossingAgent(Fraction(1, 2))
        assert agent.step("saw-heads", (), 0) == certainly("saw-heads")


class TestRepeatedCoinTosser:
    def test_accumulates_outcomes(self):
        agent = RepeatedCoinTosser()
        state = agent.initial_state(None)
        assert state == ()
        branches = agent.step(("H", "T"), (), 2)
        new_states = {action[0] for _, action in branches}
        assert new_states == {("H", "T", "H"), ("H", "T", "T")}

    def test_biased_variant(self):
        agent = RepeatedCoinTosser(Fraction(2, 3))
        branches = agent.step((), (), 0)
        probabilities = {action[0][-1]: probability for probability, action in branches}
        assert probabilities == {"H": Fraction(2, 3), "T": Fraction(1, 3)}


class TestFunctionAgent:
    def test_delegates(self):
        agent = FunctionAgent(
            initial=lambda value: value * 2,
            step=lambda state, inbox, round_number: certainly(state + round_number),
        )
        assert agent.initial_state(3) == 6
        assert agent.step(6, (), 4) == certainly(10)
