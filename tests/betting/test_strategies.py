"""Opponent strategies: locality, enumeration, proof constructions."""

from fractions import Fraction

import pytest

from repro.betting import (
    NO_BET,
    Strategy,
    constant_strategy,
    enumerate_strategies,
    injective_strategy,
    opponent_states,
    targeted_strategy,
)
from repro.errors import BettingError
from repro.examples_lib import three_agent_coin_system


@pytest.fixture(scope="module")
def coin():
    return three_agent_coin_system()


class TestStrategy:
    def test_table_lookup(self):
        strategy = Strategy(2, {"s": Fraction(2)})
        assert strategy.payoff("s") == 2
        assert strategy.payoff("other") is NO_BET

    def test_default_payoff(self):
        strategy = Strategy(2, {}, default=Fraction(3))
        assert strategy.payoff("anything") == 3

    def test_nonpositive_payoffs_rejected(self):
        with pytest.raises(BettingError):
            Strategy(0, {"s": Fraction(0)})
        with pytest.raises(BettingError):
            Strategy(0, {}, default=Fraction(-1))

    def test_payoff_at_point_reads_opponent_state(self, coin):
        point = coin.psys.system.points_at_time(1)[0]
        local = point.local_state(2)
        strategy = Strategy(2, {local: Fraction(5)})
        assert strategy.payoff_at(point) == 5

    def test_constant_on_homogeneous_points(self, coin):
        time1 = coin.psys.system.points_at_time(1)
        strategy = constant_strategy(2, 2)
        assert strategy.constant_on(time1) == 2

    def test_constant_on_mixed_points_raises(self, coin):
        time1 = coin.psys.system.points_at_time(1)
        locals_ = [point.local_state(2) for point in time1]
        strategy = Strategy(2, {locals_[0]: Fraction(2), locals_[1]: Fraction(3)})
        with pytest.raises(BettingError):
            strategy.constant_on(time1)


class TestOpponentStates:
    def test_distinct_sorted(self, coin):
        states = opponent_states(coin.psys.system, 2, coin.psys.system.points)
        assert len(states) == len(set(states))
        assert list(states) == sorted(states, key=repr)

    def test_observer_has_fewer_states(self, coin):
        observer = opponent_states(coin.psys.system, 0, coin.psys.system.points)
        tosser = opponent_states(coin.psys.system, 2, coin.psys.system.points)
        assert len(observer) < len(tosser)


class TestEnumeration:
    def test_count(self):
        strategies = list(enumerate_strategies(1, ["a", "b"], [2, 3]))
        assert len(strategies) == 9  # (2 payoffs + no-bet) ** 2 states

    def test_without_no_bet(self):
        strategies = list(enumerate_strategies(1, ["a", "b"], [2, 3], include_no_bet=False))
        assert len(strategies) == 4

    def test_covers_all_functions(self):
        strategies = list(enumerate_strategies(1, ["a"], [2, 3]))
        payoffs = {strategy.payoff("a") for strategy in strategies}
        assert payoffs == {NO_BET, Fraction(2), Fraction(3)}

    def test_limit_enforced(self):
        with pytest.raises(BettingError):
            list(enumerate_strategies(1, list("abcdefgh"), [2, 3, 4, 5], limit=100))


class TestProofConstructions:
    def test_targeted(self):
        strategy = targeted_strategy(1, ["special"], 4, 1)
        assert strategy.payoff("special") == 4
        assert strategy.payoff("other") == 1

    def test_injective_distinct_payoffs(self):
        strategy = injective_strategy(1, ["a", "b", "c"])
        payoffs = [strategy.payoff(state) for state in "abc"]
        assert len(set(payoffs)) == 3

    def test_injective_with_pin(self):
        strategy = injective_strategy(1, ["a", "b", "c"], pin_local="b", pin_payoff=7)
        assert strategy.payoff("b") == 7
        payoffs = [strategy.payoff(state) for state in "abc"]
        assert len(set(payoffs)) == 3

    def test_injective_pin_collision_avoided(self):
        strategy = injective_strategy(1, ["a", "b"], pin_local="a", pin_payoff=2)
        assert strategy.payoff("a") == 2
        assert strategy.payoff("b") != 2
