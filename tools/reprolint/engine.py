"""File discovery, rule execution, and suppression filtering."""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from . import rules as _rules  # noqa: F401  (populates the registry)
from .model import Module, Violation, parse_suppressions
from .registry import Rule, all_rules


@dataclass(frozen=True)
class LintError:
    """A file reprolint could not analyse (syntax error, unreadable)."""

    path: str
    message: str

    def render(self) -> str:
        return f"{self.path}: error: {self.message}"


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        found.append(os.path.join(dirpath, filename))
        else:
            found.append(path)
    seen = set()
    unique = []
    for path in found:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return sorted(unique)


def load_module(path: str) -> Module:
    """Parse ``path`` and compute its package-relative identity.

    The package root is the topmost ancestor directory that still contains
    an ``__init__.py``; for ``src/repro/core/cuts.py`` that is
    ``src/repro``, giving ``rel_parts == ("core", "cuts")`` and
    ``root_package == "repro"``.
    """
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    tree = ast.parse(source, filename=path)
    directory = os.path.dirname(os.path.abspath(path))
    package_dirs: List[str] = []
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        package_dirs.append(os.path.basename(directory))
        parent = os.path.dirname(directory)
        if parent == directory:
            break
        directory = parent
    package_dirs.reverse()
    stem = os.path.splitext(os.path.basename(path))[0]
    if package_dirs:
        root_package = package_dirs[0]
        rel_parts = tuple(package_dirs[1:]) + (stem,)
    else:
        root_package = ""
        rel_parts = (stem,)
    source_lines = source.splitlines()
    return Module(
        path=path,
        rel_parts=rel_parts,
        tree=tree,
        source_lines=source_lines,
        suppressions=parse_suppressions(source_lines),
        root_package=root_package,
    )


def lint_module(module: Module, rules: Iterable[Rule]) -> List[Violation]:
    violations: List[Violation] = []
    for rule in rules:
        for violation in rule.check(module):
            if not module.suppressions.suppresses(violation):
                violations.append(violation)
    return violations


def lint_paths(
    paths: Sequence[str],
) -> Tuple[List[Violation], List[LintError]]:
    """Lint every python file reachable from ``paths``.

    Returns ``(violations, errors)``, each sorted for stable output.
    """
    rules = all_rules()
    violations: List[Violation] = []
    errors: List[LintError] = []
    for path in iter_python_files(paths):
        try:
            module = load_module(path)
        except (OSError, SyntaxError, ValueError) as exc:
            errors.append(LintError(path=path, message=str(exc)))
            continue
        violations.extend(lint_module(module, rules))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    errors.sort(key=lambda e: e.path)
    return violations, errors


__all__ = ["LintError", "iter_python_files", "lint_module", "lint_paths", "load_module"]
