"""The fault-tolerant task engine: retries, backoff, recovery, terminal errors."""

import os
import time
from fractions import Fraction

import pytest

from repro.errors import RetryExhaustedError, TaskTimeoutError
from repro.robustness import RetryPolicy, TaskContext, run_tasks
from repro.robustness.engine import _EngineState, _run_pool, _run_serial
from repro.testing import Fault, FaultInjectingTask, FaultPlan


def _square(value: int) -> int:
    return value * value


def _boom(value: int) -> int:
    raise ValueError(f"task {value} always fails")


def _sleepy(value: float) -> float:
    time.sleep(value)
    return value


class _Unpicklable(Exception):
    def __init__(self):
        super().__init__("unpicklable")
        self.handle = lambda: None  # closures cannot cross the boundary


def _raise_unpicklable(value):
    raise _Unpicklable()


class _LoadsPoisoned(Exception):
    """Pickles fine, but unpickling calls ``__init__`` with too few args."""

    def __init__(self, message, detail):
        super().__init__(message)  # args == (message,): loads() TypeErrors
        self.detail = detail


def _log_then_maybe_poison(item):
    """Append one line per execution, then raise on the 'boom' label.

    The log file counts how many times each task actually ran, pinning
    down any fallback path that re-executes tasks.
    """
    log_path, label = item
    with open(log_path, "a", encoding="utf-8") as handle:
        handle.write(label + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    if label == "boom":
        raise _LoadsPoisoned("dumps fine, loads raises", "detail")
    return label


def _no_sleep(seconds: float) -> None:
    assert seconds >= 0


class TestRetryPolicy:
    def test_backoff_is_deterministic(self):
        policy = RetryPolicy(seed=42)
        first = [policy.backoff_delay(index, attempt) for index in range(4) for attempt in range(3)]
        second = [policy.backoff_delay(index, attempt) for index in range(4) for attempt in range(3)]
        assert first == second

    def test_backoff_without_jitter_is_pure_exponential(self):
        policy = RetryPolicy(base_delay=0.1, backoff_factor=2.0, max_delay=10.0, jitter=0.0)
        assert policy.backoff_delay(0, 0) == pytest.approx(0.1)
        assert policy.backoff_delay(0, 1) == pytest.approx(0.2)
        assert policy.backoff_delay(5, 2) == pytest.approx(0.4)

    def test_jitter_never_exceeds_the_cap(self):
        policy = RetryPolicy(base_delay=1.0, backoff_factor=3.0, max_delay=2.0, jitter=0.5, seed=7)
        for index in range(8):
            for attempt in range(4):
                delay = policy.backoff_delay(index, attempt)
                assert 0.0 <= delay <= 2.0

    def test_seed_changes_the_schedule(self):
        one = RetryPolicy(seed=1).backoff_delay(3, 1)
        two = RetryPolicy(seed=2).backoff_delay(3, 1)
        assert one != two

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)


class TestRunTasksBasics:
    def test_matches_serial_map_in_order(self):
        assert run_tasks(_square, [3, 1, 2], max_workers=1) == [9, 1, 4]
        assert run_tasks(_square, [3, 1, 2]) == [9, 1, 4]

    def test_empty_task_list(self):
        assert run_tasks(_square, []) == []

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            run_tasks(_square, [1], max_workers=0)

    def test_exact_fractions_cross_the_pool(self):
        def half(value):
            return Fraction(value, 2)

        # closures force the serial path; the module-level pool path is
        # exercised by the sweep tests
        assert run_tasks(half, [1, 3], max_workers=1) == [Fraction(1, 2), Fraction(3, 2)]

    def test_completed_tasks_are_never_rerun(self):
        calls = []

        def record(value):
            calls.append(value)
            return value * 10

        results = run_tasks(
            record, [1, 2, 3], max_workers=1, completed={1: 999}
        )
        assert results == [10, 999, 30]
        assert calls == [1, 3]

    def test_on_result_streams_only_new_results(self):
        seen = []
        results = run_tasks(
            _square,
            [2, 3, 4],
            max_workers=1,
            completed={0: 4},
            on_result=lambda index, value: seen.append((index, value)),
        )
        assert results == [4, 9, 16]
        assert seen == [(1, 9), (2, 16)]

    def test_context_protocol_passes_index_and_attempt(self):
        contexts = []

        def wants(task, context):
            contexts.append(context)
            return task

        wants.wants_context = True
        assert run_tasks(wants, ["a", "b"], max_workers=1) == ["a", "b"]
        assert contexts == [TaskContext(index=0, attempt=0), TaskContext(index=1, attempt=0)]


class TestRetriesAndTerminalErrors:
    def test_transient_failures_are_retried_to_success(self):
        plan = FaultPlan({(0, 0): Fault("raise"), (0, 1): Fault("raise")})
        task = FaultInjectingTask(inner=_square, plan=plan)
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        assert run_tasks(task, [5, 6], max_workers=1, policy=policy, sleep=_no_sleep) == [25, 36]

    def test_retry_exhausted_carries_identity_and_attempt_log(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        with pytest.raises(RetryExhaustedError) as excinfo:
            run_tasks(_boom, [7, 8], max_workers=1, policy=policy, sleep=_no_sleep)
        error = excinfo.value
        assert error.task_index == 0
        assert error.task == 7
        assert len(error.attempts) == 3
        assert [attempt.outcome for attempt in error.attempts] == ["raised"] * 3
        assert all("always fails" in attempt.error for attempt in error.attempts)
        assert isinstance(error.__cause__, ValueError)

    def test_retry_exhausted_in_pool_keeps_original_cause(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        with pytest.raises(RetryExhaustedError) as excinfo:
            run_tasks(_boom, [1, 2, 3], policy=policy, sleep=_no_sleep)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_unpicklable_task_error_still_attributed(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        with pytest.raises(RetryExhaustedError) as excinfo:
            run_tasks(_raise_unpicklable, [1, 2], policy=policy, sleep=_no_sleep)
        error = excinfo.value
        assert error.task_index == 0
        assert any("_Unpicklable" in attempt.error for attempt in error.attempts)

    def test_serial_timeout_is_terminal_after_retries(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        with pytest.raises(TaskTimeoutError) as excinfo:
            run_tasks(
                _sleepy, [0.05], max_workers=1, policy=policy, timeout=0.001, sleep=_no_sleep
            )
        error = excinfo.value
        assert error.task_index == 0
        assert [attempt.outcome for attempt in error.attempts] == ["timeout", "timeout"]


class TestWorkerCrashRecovery:
    def test_killed_worker_requeues_only_incomplete_tasks(self):
        # Task 1 kills its worker on attempts 0 and 1; every completed
        # result must survive the broken pools and the final row list
        # must match the serial map exactly.
        plan = FaultPlan({(1, 0): Fault("kill"), (1, 1): Fault("kill")})
        task = FaultInjectingTask(inner=_square, plan=plan)
        policy = RetryPolicy(max_attempts=4, base_delay=0.0, jitter=0.0)
        results = run_tasks(task, [2, 3, 4, 5], policy=policy, sleep=_no_sleep)
        assert results == [4, 9, 16, 25]

    def test_kill_on_final_attempt_is_terminal(self):
        plan = FaultPlan({(0, 0): Fault("kill"), (0, 1): Fault("kill")})
        task = FaultInjectingTask(inner=_square, plan=plan)
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        with pytest.raises(RetryExhaustedError) as excinfo:
            run_tasks(task, [2, 3], policy=policy, sleep=_no_sleep)
        assert excinfo.value.task_index == 0

    def test_pool_timeout_recovers_on_retry(self):
        # Attempt 0 of task 0 stalls past the timeout; attempt 1 is clean.
        plan = FaultPlan({(0, 0): Fault("delay", delay=1.5)})
        task = FaultInjectingTask(inner=_square, plan=plan)
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        results = run_tasks(task, [6, 7], policy=policy, timeout=0.3, sleep=_no_sleep)
        assert results == [36, 49]

    def test_terminal_timeout_raises_promptly_despite_stuck_worker(self):
        # Regression: the pool used to be shut down with wait=True on the
        # terminal-raise path, so the TaskTimeoutError for a stuck task
        # did not surface until the hung worker finished -- here, a full
        # 4 seconds despite the 0.3s per-task timeout.
        plan = FaultPlan({(0, 0): Fault("delay", delay=4.0)})
        task = FaultInjectingTask(inner=_square, plan=plan)
        policy = RetryPolicy(max_attempts=1)
        started = time.monotonic()
        with pytest.raises(TaskTimeoutError):
            run_tasks(task, [2, 3], policy=policy, timeout=0.3, sleep=_no_sleep)
        assert time.monotonic() - started < 3.0

    def test_abandoned_pool_does_not_charge_healthy_tasks(self):
        # Regression: abandoning a pool because one task got stuck used
        # to charge a "worker-lost" attempt to every healthy task still
        # queued or mid-flight on it.  Task 0 stalls past the timeout on
        # attempt 0 while task 1 occupies the other worker and task 2 is
        # still queued; neither may be billed for the abandonment.
        plan = FaultPlan(
            {(0, 0): Fault("delay", delay=2.5), (1, 0): Fault("delay", delay=2.5)}
        )
        task = FaultInjectingTask(inner=_square, plan=plan)
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        state = _EngineState(task, [2, 3, 4], policy, 0.5, None, _no_sleep)
        for index in range(3):
            state.register(index)
        _run_pool(state, max_workers=2)
        _run_serial(state)
        assert [state.results[index] for index in range(3)] == [4, 9, 16]
        outcomes = [
            attempt.outcome for log in state.attempt_log.values() for attempt in log
        ]
        assert "worker-lost" not in outcomes
        # The never-faulted task succeeded on its first (and only) attempt.
        assert [attempt.outcome for attempt in state.attempt_log[2]] == ["ok"]
        assert state.attempt_log[2][0].attempt == 0

    def test_loads_poisoned_task_error_counts_attempts_without_rerun(self, tmp_path):
        # Regression: an exception that pickles but fails to UNpickle
        # used to blow up during result deserialization in the parent,
        # get misread as pool infrastructure, and push every incomplete
        # task through the serial path -- re-executing the failing task
        # beyond its attempt budget.  The worker must detect the failed
        # round-trip and ship the text summary instead.
        log_path = str(tmp_path / "executions.log")
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        with pytest.raises(RetryExhaustedError) as excinfo:
            run_tasks(
                _log_then_maybe_poison,
                [(log_path, "boom"), (log_path, "a")],
                policy=policy,
                sleep=_no_sleep,
            )
        error = excinfo.value
        assert error.task_index == 0
        assert any("_LoadsPoisoned" in attempt.error for attempt in error.attempts)
        with open(log_path, "r", encoding="utf-8") as handle:
            executions = handle.read().split()
        assert executions.count("boom") == policy.max_attempts
        assert executions.count("a") == 1
