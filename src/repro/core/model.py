"""The Section 2 model of computation: global states, runs, points, systems.

A *global state* is an ``(n+1)``-tuple ``(s_e, s_1, ..., s_n)`` of the
environment's state and each agent's local state.  A *run* is a map from
times (natural numbers) to global states; we model finite-horizon runs as
tuples of global states.  A *system* is a set of runs.  A *point* is a pair
``(r, k)``.

Knowledge is possible-worlds knowledge over points: agent ``i`` considers
``(r', k')`` possible at ``(r, k)`` iff its local state agrees,
``r_i(k) = r'_i(k')``; ``K_i(c)`` is the set of points agent ``i`` considers
possible at ``c``; and ``p_i`` knows a fact at ``c`` iff the fact holds at
every point of ``K_i(c)``.

The paper's technical assumption -- the environment component encodes the
adversary and the entire history -- is enforced by the tree builder
(:mod:`repro.trees.builder`); this module only requires hashability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import ModelError
from ..probability.bitset import OutcomeIndex

LocalState = Hashable
EnvironmentState = Hashable


@dataclass(frozen=True)
class GlobalState:
    """An ``(n+1)``-tuple ``(s_e, s_1, ..., s_n)`` of environment and local states.

    ``local_states[i]`` is the local state of agent ``i`` (0-indexed; the
    paper's ``p_1`` is agent 0).
    """

    environment: EnvironmentState
    local_states: Tuple[LocalState, ...]

    @property
    def num_agents(self) -> int:
        """The number of agents whose local states this global state carries."""
        return len(self.local_states)

    def local_state(self, agent: int) -> LocalState:
        """The local state of ``agent`` in this global state."""
        return self.local_states[agent]

    def with_environment(self, environment: EnvironmentState) -> "GlobalState":
        """A copy with the environment component replaced."""
        return GlobalState(environment, self.local_states)

    def __hash__(self) -> int:
        # Environments encode full histories (deep nested tuples), so a
        # recomputed-per-lookup hash dominates large-system run times; cache
        # it on first use (safe: the dataclass is frozen).  Plain attribute
        # access beats a __dict__.get on the hot path.
        try:
            return self._hash
        except AttributeError:
            cached = hash((self.environment, self.local_states))
            object.__setattr__(self, "_hash", cached)
            return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GlobalState(env={self.environment!r}, locals={self.local_states!r})"


@dataclass(frozen=True)
class Run:
    """A finite-horizon run: the sequence of global states it passes through.

    ``states[k]`` is ``r(k)``.  All runs of the reproduction are finite;
    temporal operators treat the final state as repeating forever
    (end-stuttering), which matches the paper's examples where every run
    reaches a halting state.
    """

    states: Tuple[GlobalState, ...]

    def __post_init__(self) -> None:
        if not self.states:
            raise ModelError("a run must pass through at least one global state")
        agent_counts = {state.num_agents for state in self.states}
        if len(agent_counts) != 1:
            raise ModelError("all global states of a run must have the same agent count")

    @property
    def horizon(self) -> int:
        """The number of distinct times ``0..horizon-1`` the run is defined at."""
        return len(self.states)

    @property
    def num_agents(self) -> int:
        """Agent count shared by every global state of the run."""
        return self.states[0].num_agents

    def state(self, time: int) -> GlobalState:
        """``r(time)``, with end-stuttering past the horizon."""
        if time < 0:
            raise ModelError("runs are not defined at negative times")
        if time >= len(self.states):
            return self.states[-1]
        return self.states[time]

    def local_state(self, agent: int, time: int) -> LocalState:
        """``r_i(k)``: agent ``agent``'s local state at ``time``."""
        return self.state(time).local_state(agent)

    def environment_state(self, time: int) -> EnvironmentState:
        """``r_e(k)``: the environment's state at ``time``."""
        return self.state(time).environment

    def points(self) -> Iterator["Point"]:
        """The points ``(r, 0) .. (r, horizon-1)`` of this run."""
        for time in range(len(self.states)):
            yield Point(self, time)

    def extends(self, point: "Point") -> bool:
        """True iff this run passes through the same global states as
        ``point.run`` up to and including ``point.time`` (Section 2)."""
        if point.time >= self.horizon:
            return False
        return all(
            self.states[k] == point.run.states[k] for k in range(point.time + 1)
        )

    def __len__(self) -> int:
        return len(self.states)

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            cached = hash(self.states)
            object.__setattr__(self, "_hash", cached)
            return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Run(horizon={self.horizon})"


class Point(NamedTuple):
    """A point ``(r, k)``: a run together with a time."""

    run: Run
    time: int

    @property
    def global_state(self) -> GlobalState:
        """The global state ``r(k)`` at this point."""
        return self.run.state(self.time)

    def local_state(self, agent: int) -> LocalState:
        """Agent ``agent``'s local state at this point."""
        return self.run.local_state(agent, self.time)

    @property
    def environment_state(self) -> EnvironmentState:
        """The environment's state at this point."""
        return self.run.environment_state(self.time)

    def successor(self) -> "Point":
        """The next point on the same run (stuttering at the horizon)."""
        if self.time + 1 < self.run.horizon:
            return Point(self.run, self.time + 1)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Point(time={self.time}, state={self.global_state!r})"


class System:
    """A system: a set of runs, with indexed knowledge queries.

    The constructor materialises every point and builds, per agent, an index
    from local state to the points carrying it, so that ``K_i(c)`` is a
    dictionary lookup rather than a pairwise scan.  (The naive scan is kept
    as :meth:`knowledge_set_naive` for the indexing ablation benchmark.)
    """

    def __init__(self, runs: Iterable[Run]) -> None:
        self._runs: Tuple[Run, ...] = tuple(dict.fromkeys(runs))
        if not self._runs:
            raise ModelError("a system must contain at least one run")
        agent_counts = {run.num_agents for run in self._runs}
        if len(agent_counts) != 1:
            raise ModelError("all runs of a system must have the same agent count")
        self._num_agents = agent_counts.pop()
        self._by_local: List[Dict[LocalState, List[Point]]] = [
            {} for _ in range(self._num_agents)
        ]
        by_local = self._by_local
        points: List[Point] = []
        # read each run's state tuple directly: the per-point
        # ``local_state`` dispatch chain dominates construction on
        # thousand-run systems
        for run in self._runs:
            for time, state in enumerate(run.states):
                point = Point(run, time)
                points.append(point)
                for agent, local in enumerate(state.local_states):
                    by_local[agent].setdefault(local, []).append(point)
        self._points: Tuple[Point, ...] = tuple(points)
        self._knowledge_cache: List[Dict[LocalState, FrozenSet[Point]]] = [
            {} for _ in range(self._num_agents)
        ]
        self._point_index: Optional[OutcomeIndex] = None
        self._class_masks: List[Optional[Tuple[int, ...]]] = [
            None for _ in range(self._num_agents)
        ]
        self._knowledge_masks: List[Dict[LocalState, int]] = [
            {} for _ in range(self._num_agents)
        ]
        self._partition_kernels: List[Optional[object]] = [
            None for _ in range(self._num_agents)
        ]
        self._class_matrices: List[Optional[object]] = [
            None for _ in range(self._num_agents)
        ]

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def runs(self) -> Tuple[Run, ...]:
        """The runs of the system, in insertion order."""
        return self._runs

    @property
    def num_agents(self) -> int:
        """Number of agents ``p_1 .. p_n`` (0-indexed as ``0 .. n-1``)."""
        return self._num_agents

    @property
    def agents(self) -> range:
        """Iterable of agent indices."""
        return range(self._num_agents)

    @property
    def points(self) -> Tuple[Point, ...]:
        """Every point ``(r, k)`` with ``0 <= k < r.horizon``."""
        return self._points

    def points_at_time(self, time: int) -> Tuple[Point, ...]:
        """All points of the system at a fixed time."""
        return tuple(point for point in self._points if point.time == time)

    def max_horizon(self) -> int:
        """The longest run horizon in the system."""
        return max(run.horizon for run in self._runs)

    def __contains__(self, point: Point) -> bool:
        return point.run in self._runs and 0 <= point.time < point.run.horizon

    # ------------------------------------------------------------------
    # Knowledge
    # ------------------------------------------------------------------

    def indistinguishable(self, agent: int, first: Point, second: Point) -> bool:
        """``(r,k) ~_i (r',k')``: the agent's local state agrees."""
        return first.local_state(agent) == second.local_state(agent)

    def knowledge_set(self, agent: int, point: Point) -> FrozenSet[Point]:
        """``K_i(c)``: the points agent ``i`` considers possible at ``c``."""
        local = point.local_state(agent)
        cache = self._knowledge_cache[agent]
        if local not in cache:
            cache[local] = frozenset(self._by_local[agent].get(local, ()))
        return cache[local]

    def knowledge_set_naive(self, agent: int, point: Point) -> FrozenSet[Point]:
        """``K_i(c)`` via a pairwise scan (ablation baseline; see DESIGN.md)."""
        return frozenset(
            candidate
            for candidate in self._points
            if self.indistinguishable(agent, point, candidate)
        )

    # ------------------------------------------------------------------
    # Bitmask view (shared with the logic layer)
    # ------------------------------------------------------------------

    @property
    def point_index(self) -> OutcomeIndex:
        """Canonical ``point -> bit position`` index (built on first use).

        Positions follow :attr:`points` order, so masks built by different
        consumers of the same system agree bit for bit.
        """
        index = self._point_index
        if index is None:
            index = OutcomeIndex(self._points)
            self._point_index = index
        return index

    def agent_class_masks(self, agent: int) -> Tuple[int, ...]:
        """The information partition of ``agent`` as bit masks.

        One mask per local-state class; each mask is simultaneously the
        class and the knowledge set ``K_i(c)`` of every point ``c`` in it.
        """
        masks = self._class_masks[agent]
        if masks is None:
            index = self.point_index
            masks = tuple(
                index.mask_of(points) for points in self._by_local[agent].values()
            )
            self._class_masks[agent] = masks
        return masks

    def agent_partition_kernel(self, agent: int):
        """``agent``'s information partition as a wordarray kernel.

        A cached :class:`~repro.probability.wordmask.PartitionKernel` over
        :attr:`point_index`, whose ``knowledge_words`` answers "union of
        the classes wholly inside a target" -- the extension of ``K_i``
        applied to the target (Section 2) -- in one ``bincount`` pass.
        The wordarray model checker's hot path; requires numpy.
        """
        kernel = self._partition_kernels[agent]
        if kernel is None:
            from ..probability import wordmask

            index = self.point_index
            kernel = wordmask.PartitionKernel.from_blocks(
                self._by_local[agent].values(), index.position, len(index)
            )
            self._partition_kernels[agent] = kernel
        return kernel

    def agent_class_matrix(self, agent: int):
        """``agent``'s class masks stacked into one ``(n_classes, n_words)``
        ``uint64`` matrix (cached; requires numpy).

        The general batched form for
        :func:`~repro.probability.wordmask.fold_contained_rows`; the model
        checker itself prefers :meth:`agent_partition_kernel`, which
        exploits that the classes partition the points.
        """
        matrix = self._class_matrices[agent]
        if matrix is None:
            from ..probability import wordmask

            n_words = wordmask.word_count(len(self.point_index))
            matrix = wordmask.stack_masks(self.agent_class_masks(agent), n_words)
            self._class_matrices[agent] = matrix
        return matrix

    def knowledge_mask(self, agent: int, point: Point) -> int:
        """``K_i(c)`` as a bit mask over :attr:`point_index`."""
        local = point.local_state(agent)
        cache = self._knowledge_masks[agent]
        mask = cache.get(local)
        if mask is None:
            mask = self.point_index.mask_of(self._by_local[agent].get(local, ()))
            cache[local] = mask
        return mask

    def knows(self, agent: int, point: Point, fact: "FactLike") -> bool:
        """``(r,k) |= K_i phi``: the fact holds at every point of ``K_i(c)``."""
        holds = _fact_predicate(fact)
        return all(holds(candidate) for candidate in self.knowledge_set(agent, point))

    def local_state_classes(self, agent: int) -> Dict[LocalState, Tuple[Point, ...]]:
        """The information partition of ``agent``: local state -> its points."""
        return {
            local: tuple(points) for local, points in self._by_local[agent].items()
        }

    # ------------------------------------------------------------------
    # Synchrony
    # ------------------------------------------------------------------

    def is_synchronous(self) -> bool:
        """Section 6's definition (from HV89): if ``r_i(k) = r'_i(k')`` then
        ``k = k'`` -- effectively, every agent can read a global clock."""
        for agent in self.agents:
            for points in self._by_local[agent].values():
                times = {point.time for point in points}
                if len(times) > 1:
                    return False
        return True

    def require_synchronous(self) -> None:
        """Raise :class:`SynchronyError` unless the system is synchronous."""
        from ..errors import SynchronyError

        if not self.is_synchronous():
            raise SynchronyError("operation requires a synchronous system")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"System({len(self._runs)} runs, {len(self._points)} points, "
            f"{self._num_agents} agents)"
        )


# Imported late to avoid a cycle; facts live in their own module but the
# typing alias is convenient here.
def _fact_predicate(fact) -> "callable":
    if callable(getattr(fact, "holds_at", None)):
        return fact.holds_at
    if isinstance(fact, (set, frozenset)):
        return fact.__contains__
    if callable(fact):
        return fact
    raise ModelError(f"cannot interpret {fact!r} as a fact")


FactLike = object
