"""E14 -- Appendix B.2: inner/outer expectation for non-measurable facts.

Paper claims: for a two-valued variable x > y,
E_*(X) = x mu_*(X=x) + y mu^*(X=y) (dually for E^*); both bounds are
attained by extensions of the space; and Theorem 7 survives with inner
expectation in place of expectation.
"""

from fractions import Fraction

from repro.betting import BettingRule, constant_strategy, expected_winnings
from repro.core import PostAssignment, ProbabilityAssignment
from repro.examples_lib import repeated_coin_system
from repro.probability import (
    FiniteProbabilitySpace,
    attainability_witnesses,
    scaled_indicator,
)
from repro.reporting import print_table


def run_experiment():
    # the coarse die space: atoms {1,2,3}, {4,5,6}; X = 2 on evens, -1 else
    space = FiniteProbabilitySpace.from_atoms(
        [{1, 2, 3}, {4, 5, 6}], [Fraction(1, 2), Fraction(1, 2)]
    )
    variable = scaled_indicator({2, 4, 6}, 2, -1)
    inner = space.inner_expectation(variable)
    outer = space.outer_expectation(variable)
    inner_witness, outer_witness = attainability_witnesses(space, variable)

    # the betting reading: winnings on a non-measurable fact
    example = repeated_coin_system(3)
    post = ProbabilityAssignment(PostAssignment(example.psys))
    anchor = example.psys.system.points_at_time(1)[0]
    rule = BettingRule(example.most_recent_heads, Fraction(1, 2))
    winnings = rule.winnings(constant_strategy(1, 2))
    point_space = post.space(0, anchor)
    auto = expected_winnings(point_space, winnings, "auto")
    lower = expected_winnings(point_space, winnings, "lower")
    return {
        "inner": inner,
        "outer": outer,
        "inner_attained": inner_witness.expectation(variable),
        "outer_attained": outer_witness.expectation(variable),
        "auto": auto,
        "lower": lower,
    }


def test_e14_inner_outer_expectation(benchmark):
    results = benchmark(run_experiment)
    print_table(
        "E14  Appendix B.2: two-valued inner/outer expectation",
        ["quantity", "paper formula", "measured"],
        [
            ("E_*(X)", "2*mu_*(X=2) - mu^*(X=-1) = -1", results["inner"]),
            ("E^*(X)", "2*mu^*(X=2) - mu_*(X=-1) = 2", results["outer"]),
            ("attained by extension (inner)", "-1", results["inner_attained"]),
            ("attained by extension (outer)", "2", results["outer_attained"]),
        ],
    )
    print_table(
        "E14  betting on a non-measurable fact uses the inner expectation",
        ["semantics", "E[winnings]"],
        [("auto (falls back to lower)", results["auto"]), ("lower", results["lower"])],
    )
    assert results["inner"] == Fraction(-1)
    assert results["outer"] == Fraction(2)
    assert results["inner_attained"] == results["inner"]
    assert results["outer_attained"] == results["outer"]
    assert results["auto"] == results["lower"]
