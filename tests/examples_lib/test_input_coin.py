"""The Vardi input-coin example and footnote 5."""

from fractions import Fraction

import pytest

from repro.core import check_req1, standard_assignments
from repro.errors import Req1Error
from repro.examples_lib import footnote5_demonstration, input_coin_system


@pytest.fixture(scope="module")
def example():
    return input_coin_system()


class TestSystemShape:
    def test_two_trees_four_runs(self, example):
        assert len(example.psys.trees) == 2
        assert len(example.psys.system.runs) == 4

    def test_p2_knowledge_spans_trees(self, example):
        point = example.psys.system.points_at_time(1)[0]
        knowledge = example.psys.system.knowledge_set(1, point)
        adversaries = {example.psys.adversary_of(candidate) for candidate in knowledge}
        assert adversaries == {"bit=0", "bit=1"}

    def test_req1_forbids_full_knowledge_sample(self, example):
        from repro.core import check_req1

        point = example.psys.system.points_at_time(1)[0]
        knowledge = example.psys.system.knowledge_set(1, point)
        with pytest.raises(Req1Error):
            check_req1(example.psys, point, knowledge)


class TestConditionalProbabilities:
    def test_per_tree_heads_probability(self, example):
        post = standard_assignments(example.psys)["post"]
        values = {
            example.psys.adversary_of(point): post.probability(1, point, example.heads)
            for point in example.psys.system.points_at_time(1)
        }
        assert values == {"bit=0": Fraction(1, 2), "bit=1": Fraction(2, 3)}

    def test_p1_knows_outcome(self, example):
        post = standard_assignments(example.psys)["post"]
        for point in example.psys.system.points_at_time(1):
            value = post.probability(0, point, example.heads)
            assert value in (Fraction(0), Fraction(1))

    def test_no_unconditional_probability(self, example):
        # the system deliberately provides no distribution across trees:
        # the two trees' run spaces are separate probability spaces.
        first, second = example.psys.trees
        assert set(first.run_space().outcomes).isdisjoint(second.run_space().outcomes)

    def test_custom_bias(self):
        example = input_coin_system(Fraction(3, 4))
        post = standard_assignments(example.psys)["post"]
        biased_points = [
            point
            for point in example.psys.system.points_at_time(1)
            if example.psys.adversary_of(point) == "bit=1"
        ]
        assert post.probability(1, biased_points[0], example.heads) == Fraction(3, 4)


class TestFootnote5:
    def test_action_event_not_measurable(self):
        report = footnote5_demonstration()
        assert not report.action_measurable_before

    def test_bit_events_not_measurable_in_natural_algebra(self):
        report = footnote5_demonstration()
        assert not report.bit_events_measurable_before

    def test_closure_forces_bit_events_measurable(self):
        # adding the action event makes the nondeterministic input
        # measurable -- the footnote's contradiction.
        report = footnote5_demonstration()
        assert report.bit_events_measurable_after

    def test_closure_is_full_powerset(self):
        report = footnote5_demonstration()
        assert report.closure_size_after == 16

    def test_natural_space_gives_heads_half(self):
        report = footnote5_demonstration()
        heads = frozenset({(1, "h"), (0, "h")})
        assert report.space.measure(heads) == Fraction(1, 2)
        inner, outer = report.space.measure_interval(report.action_event)
        assert (inner, outer) == (Fraction(0), Fraction(1))
