"""Exception hierarchy shared by every subsystem of the reproduction.

Keeping the exceptions in one flat module lets callers catch broad classes
(``ReproError``) or precise ones (``NotMeasurableError``) without importing
the subsystem that raised them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ProbabilityError(ReproError):
    """Base class for errors raised by the measure-theory substrate."""


class NotMeasurableError(ProbabilityError):
    """An event (or random variable) is not measurable in the given space.

    The paper handles non-measurable events with inner and outer measures
    (Section 5 and Section 7); this error signals that a caller asked for an
    exact probability where only bounds exist.
    """


class NotAPartitionError(ProbabilityError):
    """A proposed atom collection does not partition the sample space."""


class BackendError(ProbabilityError):
    """A mask-level operation was requested from a space built on the
    naive (frozenset) measure backend, which carries no outcome index."""


class InvalidMeasureError(ProbabilityError):
    """Atom probabilities are negative or do not sum to one."""


class ZeroMeasureConditioningError(ProbabilityError):
    """Conditioning on an event of measure zero is undefined."""


class ModelError(ReproError):
    """Base class for errors in the runs/points/knowledge model."""


class SynchronyError(ModelError):
    """An operation that requires a synchronous system was applied to an
    asynchronous one (or vice versa)."""


class TreeError(ReproError):
    """Base class for errors in the computation-tree substrate."""


class TechnicalAssumptionError(TreeError):
    """The paper's technical assumption is violated: the environment state
    must encode the adversary and the full history, so a global state may
    appear in at most one computation tree and at most once per tree."""


class AssignmentError(ReproError):
    """Base class for errors about sample-space / probability assignments."""


class Req1Error(AssignmentError):
    """REQ1 violated: a sample space contains points from more than one
    computation tree (Section 5)."""


class Req2Error(AssignmentError):
    """REQ2 violated: the runs through a sample space are not a measurable
    set of positive measure (Section 5)."""


class LogicError(ReproError):
    """Base class for errors in the logic L(Phi)."""


class ParseError(LogicError):
    """A formula string could not be parsed."""


class BettingError(ReproError):
    """Base class for errors in the betting-game engine."""


class SimulationError(ReproError):
    """Base class for errors in the distributed-system simulator."""
