"""Expectation utilities layered over :class:`FiniteProbabilitySpace`.

Most expectation logic lives on the space itself; this module adds the
pieces the betting game needs:

* :func:`indicator` -- the {0,1}-valued variable of an event.
* :func:`conditional_expectation` -- ``E[X | B]`` and the law of total
  expectation used in Proposition 6's proof.
* :func:`attainability_witnesses` -- the Appendix B.2 claim that the inner
  and outer expectations are *attained* by extensions of the space: builds
  the extending spaces explicitly.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

from ..errors import NotMeasurableError
from .algebra import Atom
from .fractionutil import ZERO, as_fraction
from .space import FiniteProbabilitySpace, RandomVariable


def indicator(event: Iterable[Hashable]) -> RandomVariable:
    """The indicator random variable of ``event``."""
    event_set = frozenset(event)

    def variable(outcome: Hashable) -> Fraction:
        return Fraction(1) if outcome in event_set else Fraction(0)

    return variable


def scaled_indicator(
    event: Iterable[Hashable], if_true, if_false
) -> RandomVariable:
    """A two-valued variable: ``if_true`` on the event, ``if_false`` off it.

    This is exactly the shape of the betting game's winnings variable
    ``W_f`` (payoff - 1 when the fact holds, -1 when it does not).
    """
    event_set = frozenset(event)
    true_value = as_fraction(if_true)
    false_value = as_fraction(if_false)

    def variable(outcome: Hashable) -> Fraction:
        return true_value if outcome in event_set else false_value

    return variable


def conditional_expectation(
    space: FiniteProbabilitySpace,
    variable: RandomVariable,
    given: Iterable[Hashable],
) -> Fraction:
    """``E[X | B]`` for measurable ``X`` and measurable positive ``B``."""
    conditioned = space.condition(given)
    return conditioned.expectation(variable)


def law_of_total_expectation_check(
    space: FiniteProbabilitySpace,
    variable: RandomVariable,
    partition: Sequence[Iterable[Hashable]],
) -> bool:
    """Verify ``E[X] = sum_B E[X|B] mu(B)`` over a measurable partition.

    This identity is the engine of Proposition 6's proof (Tree-safety and
    Tree^j-safety agree in synchronous systems); exposing it as a checker
    lets the test suite exercise the same argument computationally.
    """
    total = ZERO
    for block in partition:
        block_set = frozenset(block)
        weight = space.measure(block_set)
        if weight == ZERO:
            continue
        total += conditional_expectation(space, variable, block_set) * weight
    return total == space.expectation(variable)


def attainability_witnesses(
    space: FiniteProbabilitySpace, variable: RandomVariable
) -> Tuple[FiniteProbabilitySpace, FiniteProbabilitySpace]:
    """Extensions of ``space`` attaining the inner and outer expectations.

    Appendix B.2: for a two-valued variable ``X`` with values ``x > y``,
    there are extensions of the space making ``X`` measurable whose (now
    well-defined) expectations equal ``E_*(X)`` and ``E^*(X)``.  We build
    them by splitting each mixed atom and pushing all of its mass onto the
    low-value part (inner) or the high-value part (outer).

    Returns ``(inner_witness, outer_witness)``.
    """
    classes: Dict[Fraction, set] = {}
    for outcome in space.outcomes:
        classes.setdefault(as_fraction(variable(outcome)), set()).add(outcome)
    if len(classes) == 1:
        return space, space
    if len(classes) != 2:
        raise NotMeasurableError("attainability witnesses need a two-valued variable")
    high_value, low_value = sorted(classes, reverse=True)
    high_set = frozenset(classes[high_value])
    low_set = frozenset(classes[low_value])

    def split(favour_low: bool) -> FiniteProbabilitySpace:
        atoms: List[Atom] = []
        probabilities: Dict[Atom, Fraction] = {}
        for atom in space.atoms:
            mass = space.atom_probability(atom)
            high_part = atom & high_set
            low_part = atom & low_set
            if not high_part or not low_part:
                atoms.append(atom)
                probabilities[atom] = mass
                continue
            atoms.extend([high_part, low_part])
            if favour_low:
                probabilities[high_part] = ZERO
                probabilities[low_part] = mass
            else:
                probabilities[high_part] = mass
                probabilities[low_part] = ZERO
        return FiniteProbabilitySpace(atoms, probabilities)

    return split(favour_low=True), split(favour_low=False)
