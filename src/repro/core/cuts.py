"""Type-3 adversaries: choosing *when* the bet is placed (Section 7).

In an asynchronous system an agent may not know the time, so the event "the
most recent coin toss landed heads" is tested at a point the agent cannot
pin down.  The paper models this with a third adversary that maps an agent
and a point to a *cut* through ``Tree^j_ic``:

* **point cuts** (class ``pts``): exactly one point from every run through
  the region;
* **generalized point cuts**: at most one point per run (the adversary may
  deny the bet on some runs);
* **state cuts** (class ``state``, Fischer-Zuck [FZ88a]): an antichain of
  global states (no two on the same run) -- if the test happens at one point
  of a global state it happens at all of them;
* **horizontal cuts**: all time-``k`` points, the adversary ``A_k`` that
  simply picks a stopping time.

For each class this module computes the induced probability of a fact under
every cut and the resulting sharpest ``K_i^[alpha,beta]`` interval, both by
explicit enumeration (small systems) and -- for the ``pts`` class -- by the
closed form that Proposition 10's proof establishes: the infimum over cuts
is the inner measure of the region and the supremum is the outer measure.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from ..errors import AssignmentError
from ..probability.fractionutil import ONE, ZERO
from .assignments import PointSet, SampleSpaceAssignment, induced_point_space
from .facts import Fact
from .model import GlobalState, Point, Run

if TYPE_CHECKING:
    # Annotation-only: core sits below trees in the import DAG (RL002).
    from ..trees.probabilistic_system import ProbabilisticSystem

Region = PointSet


def points_by_run(region: Region) -> Dict[Run, Tuple[Point, ...]]:
    """Group a region's points by run, each group sorted by time."""
    groups: Dict[Run, List[Point]] = {}
    for point in region:
        groups.setdefault(point.run, []).append(point)
    return {run: tuple(sorted(pts, key=lambda p: p.time)) for run, pts in groups.items()}


def count_point_cuts(region: Region) -> int:
    """How many cuts (one point per run) pass through the region."""
    count = 1
    for points in points_by_run(region).values():
        count *= len(points)
    return count


def enumerate_point_cuts(region: Region, limit: int = 100_000) -> Iterator[PointSet]:
    """Every cut through the region: one point per run (the ``pts`` class)."""
    groups = points_by_run(region)
    if count_point_cuts(region) > limit:
        raise AssignmentError(
            f"region admits more than {limit} cuts; use the closed form "
            "(pts_interval) instead of enumeration"
        )
    runs = sorted(groups, key=lambda run: repr(run.states[0]))
    for combination in product(*(groups[run] for run in runs)):
        yield frozenset(combination)


def enumerate_partial_cuts(region: Region, limit: int = 100_000) -> Iterator[PointSet]:
    """Generalized cuts: at most one point per run, at least one point overall.

    These model the adversary that "simply does not give p_i the chance to
    bet in certain runs" (end of Section 7).
    """
    groups = points_by_run(region)
    total = 1
    for points in groups.values():
        total *= len(points) + 1
    if total > limit:
        raise AssignmentError(f"region admits more than {limit} partial cuts")
    runs = sorted(groups, key=lambda run: repr(run.states[0]))
    skip = object()
    for combination in product(*((skip,) + groups[run] for run in runs)):
        chosen = frozenset(point for point in combination if point is not skip)
        if chosen:
            yield chosen


def enumerate_state_cuts(region: Region, limit: int = 100_000) -> Iterator[PointSet]:
    """Fischer-Zuck cuts: nonempty antichains of global states in the region.

    A cut is a set of global states no two of which lie on the same run; the
    induced sample space is every region point carrying one of the chosen
    states.  (As the paper notes -- footnote 18 -- these need not cover
    every run.)
    """
    states = sorted(
        {point.global_state for point in region},
        key=lambda state: repr(state),
    )
    runs_of_state: Dict[GlobalState, FrozenSet[Run]] = {
        state: frozenset(point.run for point in region if point.global_state == state)
        for state in states
    }
    if 2 ** len(states) > limit:
        raise AssignmentError(f"region has too many global states ({len(states)}) to enumerate")

    def antichains(index: int, used_runs: FrozenSet[Run], chosen: Tuple[GlobalState, ...]):
        if index == len(states):
            if chosen:
                yield chosen
            return
        yield from antichains(index + 1, used_runs, chosen)
        state = states[index]
        if not (runs_of_state[state] & used_runs):
            yield from antichains(index + 1, used_runs | runs_of_state[state], chosen + (state,))

    for chosen in antichains(0, frozenset(), ()):
        chosen_set = set(chosen)
        yield frozenset(point for point in region if point.global_state in chosen_set)


def enumerate_banded_cuts(
    region: Region, width: int, limit: int = 100_000
) -> Iterator[PointSet]:
    """Partially-synchronous cuts: one point per run, times within a band.

    Section 7 sketches a model where processors "cannot tell time but are
    guaranteed that, for every k, all processors take their k-th step within
    some time interval of width``e``"; the matching type-3 adversary selects
    cuts whose points' times all fall in an interval of that width.  Width 0
    recovers the horizontal cuts; a width at least the region's time span
    recovers the full ``pts`` class.
    """
    for cut in enumerate_point_cuts(region, limit):
        times = [point.time for point in cut]
        if max(times) - min(times) <= width:
            yield cut


def enumerate_horizontal_cuts(region: Region) -> Iterator[PointSet]:
    """The adversaries ``A_k``: all time-``k`` points of the region, per ``k``."""
    times = sorted({point.time for point in region})
    for time in times:
        yield frozenset(point for point in region if point.time == time)


CUT_CLASSES = {
    "pts": enumerate_point_cuts,
    "partial": enumerate_partial_cuts,
    "state": enumerate_state_cuts,
    "horizontal": enumerate_horizontal_cuts,
}


def interval_over_banded_cuts(
    psys: ProbabilisticSystem,
    region_of: "SampleSpaceAssignment",
    agent: int,
    point: Point,
    fact: Fact,
    width: int,
    limit: int = 100_000,
) -> Tuple[Fraction, Fraction]:
    """The sharpest ``K_i^[a,b]`` interval over width-bounded cuts.

    Interpolates between the horizontal-cut semantics (width 0) and the full
    ``pts`` semantics (width >= the region's time span); the interval is
    monotone (non-shrinking) in the width.
    """
    system = psys.system
    low = ONE
    high = ZERO
    for candidate in system.knowledge_set(agent, point):
        region = region_of.sample_space(agent, candidate)
        if not region:
            continue
        for cut in enumerate_banded_cuts(region, width, limit):
            inner, outer = cut_probability_interval(psys, candidate, cut, fact)
            low = min(low, inner)
            high = max(high, outer)
    return low, high


# ----------------------------------------------------------------------
# Probability of a fact under a cut
# ----------------------------------------------------------------------


def cut_probability_interval(
    psys: ProbabilisticSystem, anchor: Point, cut: PointSet, fact: Fact
) -> Tuple[Fraction, Fraction]:
    """``(inner, outer)`` measure of the fact in the cut's induced space.

    For point cuts the space has one point per run, so every fact is
    measurable and inner equals outer; state cuts can still exhibit a gap if
    two chosen states lie at different times of the same run -- excluded by
    the antichain condition, so there too the interval is degenerate.
    """
    space = induced_point_space(psys, anchor, cut)
    return space.measure_interval(fact.restricted_to(cut))


def interval_over_cuts(
    psys: ProbabilisticSystem,
    region_of: SampleSpaceAssignment,
    agent: int,
    point: Point,
    fact: Fact,
    cut_class: str = "pts",
    limit: int = 100_000,
) -> Tuple[Fraction, Fraction]:
    """The sharpest ``K_i^[alpha,beta] phi`` interval at ``point`` by enumeration.

    Quantifies over every point ``d`` the agent considers possible at
    ``point`` *and* every cut of the region at ``d`` in the given class:
    ``alpha`` is the least and ``beta`` the greatest probability of the fact
    across all those cut spaces.
    """
    enumerate_cuts = CUT_CLASSES[cut_class]
    system = psys.system
    low = ONE
    high = ZERO
    for candidate in system.knowledge_set(agent, point):
        region = region_of.sample_space(agent, candidate)
        if not region:
            continue
        for cut in enumerate_cuts(region) if cut_class == "horizontal" else enumerate_cuts(region, limit):
            inner, outer = cut_probability_interval(psys, candidate, cut, fact)
            low = min(low, inner)
            high = max(high, outer)
    return low, high


def pts_interval(
    psys: ProbabilisticSystem,
    region_of: SampleSpaceAssignment,
    agent: int,
    point: Point,
    fact: Fact,
) -> Tuple[Fraction, Fraction]:
    """The ``pts``-class interval in closed form (Proposition 10's proof).

    The worst cut picks, on every run, a region point falsifying the fact if
    one exists; the best cut picks a satisfying point if one exists.  Hence
    the infimum over cuts equals the *inner* measure of the fact in the
    region's induced space and the supremum equals the *outer* measure --
    which is precisely how ``P_post`` evaluates the fact.  This closed form
    is what makes the 10-coin example (with ``11^1024`` cuts) computable.
    """
    system = psys.system
    low = ONE
    high = ZERO
    interval_cache: Dict[Region, Tuple[Fraction, Fraction]] = {}
    for candidate in system.knowledge_set(agent, point):
        region = region_of.sample_space(agent, candidate)
        if not region:
            continue
        if region not in interval_cache:
            space = induced_point_space(psys, candidate, region)
            interval_cache[region] = space.measure_interval(
                fact.restricted_to(region)
            )
        inner, outer = interval_cache[region]
        low = min(low, inner)
        high = max(high, outer)
    return low, high


def verify_proposition10(
    psys: ProbabilisticSystem,
    post_assignment,
    agent: int,
    fact: Fact,
    enumeration_limit: int = 20_000,
) -> bool:
    """Proposition 10: ``P_post |= K_i^[a,b] phi`` iff ``P_pts |= K_i^[a,b] phi``.

    Verified by comparing the sharpest intervals of the two semantics at
    every point: the closed form (by construction equal to ``P_post``'s
    interval) against explicit cut enumeration wherever the region is small
    enough to enumerate.
    """
    system = psys.system
    for point in system.points:
        closed = pts_interval(psys, post_assignment.ssa, agent, point, fact)
        post = post_assignment.knowledge_interval(agent, point, fact)
        if closed != post:
            return False
        try:
            enumerated = interval_over_cuts(
                psys, post_assignment.ssa, agent, point, fact, "pts", enumeration_limit
            )
        except AssignmentError:
            continue  # too many cuts to enumerate; closed form already checked
        if enumerated != closed:
            return False
    return True
