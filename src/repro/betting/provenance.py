"""Derivation trees for betting-game verdicts (Section 6, Theorems 7-8).

``Model.explain`` already turns every *logic* verdict into a
citation-annotated :class:`~repro.obs.provenance.Derivation`; this
module does the same for the *betting* layer, so safety verdicts and the
Theorem 8(b) adversarial construction are bundle-eligible evidence --
chainable into ``repro-audit/1`` bundles, hash-consable into
``repro-explain/2`` DAGs, diffable with ``tools/tracediff`` -- exactly
like the Section 5 knowledge derivations, reusing
:mod:`repro.obs.provenance` unchanged.

Two builders:

* :func:`safety_derivation` unfolds a
  :class:`~repro.betting.safety.SafetyCertificate` into a tree: the root
  states the Theorem 7 verdict (``Bet(phi, alpha)`` is ``P^j``-safe at
  ``c`` iff ``(P^j, c) |= K_i^alpha phi``), one child per candidate
  ``d in K_i(c)`` records its exact inner probability against the
  threshold (the Theorem 7 closed form: break-even against every
  strategy iff ``(mu_id)_*(phi) >= alpha``), and the final child is
  either the measurable witness event realising the bound at the
  tightest candidate (safe) or the proof's refuting strategy with its
  full payoff table (unsafe).
* :func:`theorem8_witness_derivation` records a
  :class:`~repro.betting.theorems.Theorem8Witness`: the escaping point
  ``d in S_ic \\ Tree^j_ic``, the relabeling verdict, and the strategy
  under which the accepted bet loses money in expectation -- Theorem
  8(b)'s constructive refutation, with the exact expected loss.

Everything is content-pure (exact ``"p/q"`` strings, index-ordered
evidence, no clocks), so equal verdicts produce byte-identical
derivations with equal fingerprints across runs and processes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.assignments import ProbabilityAssignment
from ..core.model import Point
from ..obs.provenance import Derivation, DerivationNode
from ..trees.probabilistic_system import ProbabilisticSystem
from .safety import SafetyCertificate
from .strategies import Strategy
from .theorems import Theorem8Witness

__all__ = [
    "safety_derivation",
    "strategy_payload",
    "theorem8_witness_derivation",
]


def _point_ref(psys: ProbabilisticSystem, point: Point) -> Dict:
    """``{"bit", "time", "label"}`` over the system's shared point index.

    The same encoding ``Model.explain`` uses
    (:meth:`repro.logic.explain._Explainer.point_ref`), so betting
    derivations and knowledge derivations name points identically and
    :func:`repro.logic.explain.resolve_point_ref` resolves both.
    """
    index = psys.point_index
    run_number = {run: i for i, run in enumerate(psys.system.runs)}
    return {
        "bit": index.position(point),
        "time": point.time,
        "label": f"(r{run_number[point.run]}, {point.time})",
    }


def strategy_payload(strategy: Optional[Strategy]) -> Optional[Dict]:
    """A strategy as pure JSON: agent, payoff table, default payoff.

    Local states have no canonical JSON form, so table keys serialise as
    their ``repr`` (deterministic for the frozen local-state types the
    systems use), sorted for run-to-run stability; payoffs are exact
    ``"p/q"`` strings.  This is evidence enough to *replay* the strategy
    against Section 6's winnings definition: the payoff offered at a
    point is the table entry for the opponent's local state there.
    """
    if strategy is None:
        return None
    table = sorted(
        (repr(local), payoff) for local, payoff in strategy.table_items()
    )
    return {
        "agent": strategy.agent,
        "name": strategy.name,
        "default": strategy.default_payoff,
        "table": [
            {"local": local, "payoff": payoff} for local, payoff in table
        ],
    }


def safety_derivation(
    opponent_assignment: ProbabilityAssignment,
    certificate: SafetyCertificate,
) -> Derivation:
    """A :class:`SafetyCertificate` as a ``repro-explain/1`` derivation.

    Theorem 7: ``Bet(phi, alpha)`` is safe for ``p_i`` against ``p_j``
    at ``c`` iff ``(P^j, c) |= K_i^alpha phi``.  The tree mirrors that
    biconditional: each candidate child is one ``d in K_i(c)`` with the
    closed-form break-even test (Section 6: against ``Tree^j`` spaces
    the opponent's payoff is constant per space, so break-even against
    all strategies reduces to ``(mu_id)_*(phi) >= alpha``), and the last
    child materialises whichever direction of the proof applies -- the
    inner-measure witness event when safe, the refuting strategy when
    not.  ``opponent_assignment`` must be the ``P^j`` the certificate
    was computed against; its name becomes the derivation's assignment
    field, the same convention ``Model.explain`` uses.
    """
    psys = opponent_assignment.psys
    formula = f"Safe(Bet({certificate.fact_name}, {certificate.alpha}))"
    children: List[DerivationNode] = []
    for candidate, inner in certificate.candidates:
        breaks = inner >= certificate.alpha
        children.append(
            DerivationNode(
                rule="break-even",
                formula="E[W_f] >= 0 for every strategy f at d",
                point=_point_ref(psys, candidate),
                holds=breaks,
                definition=(
                    "Section 6 / Theorem 7 closed form: on Tree^j the "
                    "opponent's payoff is constant per space, so break-even "
                    "against all strategies iff (mu_id)_*(phi) >= alpha"
                ),
                detail={
                    "inner_probability": inner,
                    "alpha": certificate.alpha,
                },
            )
        )
    if certificate.safe:
        assert certificate.witness_event is not None
        witness_bits = sorted(
            psys.point_index.position(point)
            for point in certificate.witness_event
        )
        children.append(
            DerivationNode(
                rule="inner-witness",
                formula=f"(mu_id)_*({certificate.fact_name}) >= {certificate.alpha}",
                point=_point_ref(psys, certificate.minimising_candidate),
                holds=True,
                definition=(
                    "Section 5: the inner measure is realised by a "
                    "measurable event inside the fact's point set; its "
                    "exact measure certifies the bound at the tightest "
                    "candidate of K_i(c)"
                ),
                detail={
                    "witness_bits": witness_bits,
                    "witness_measure": certificate.witness_measure,
                    "min_inner": certificate.min_inner,
                },
            )
        )
    else:
        assert certificate.counterexample is not None
        children.append(
            DerivationNode(
                rule="refuting-strategy",
                formula="E[W_f] < 0 for the targeted strategy f",
                point=_point_ref(psys, certificate.counterexample),
                holds=False,
                definition=(
                    "Theorem 7 (proof) / Theorem 8 sharpness: offering "
                    "1/alpha throughout K_j(d) and the harmless payoff 1 "
                    "elsewhere gives p_i strictly negative expected "
                    "winnings at the failing candidate d"
                ),
                detail={
                    "strategy": strategy_payload(certificate.refutation),
                    "min_inner": certificate.min_inner,
                },
            )
        )
    root = DerivationNode(
        rule="bet-safe" if certificate.safe else "bet-unsafe",
        formula=formula,
        point=_point_ref(psys, certificate.point),
        holds=certificate.safe,
        definition=(
            "Theorem 7: Bet(phi, alpha) is P^j-safe for p_i at c iff "
            "(P^j, c) |= K_i^alpha phi, i.e. (mu_id)_*(phi) >= alpha at "
            "every d in K_i(c)"
        ),
        detail={
            "agent": certificate.agent,
            "fact": certificate.fact_name,
            "alpha": certificate.alpha,
            "min_inner": certificate.min_inner,
            "minimising_candidate": _point_ref(
                psys, certificate.minimising_candidate
            ),
        },
        children=tuple(children),
    )
    return Derivation(
        assignment=opponent_assignment.name,
        formula=formula,
        point=_point_ref(psys, certificate.point),
        root=root,
    )


def theorem8_witness_derivation(
    witness: Theorem8Witness, agent: int, opponent: int
) -> Derivation:
    """A :class:`Theorem8Witness` as a ``repro-explain/1`` derivation.

    Theorem 8(b): if ``S not<= S^j``, the assignment ``S`` fails to
    determine safe bets.  The witness is the proof made concrete, and
    the tree records each step: the escaping point ``d`` in
    ``S_ic \\ Tree^j_ic``, the relabeled system concentrating measure on
    ``d``'s global state, the accepted bet (``(P_S, c) |= K_i^alpha
    phi`` with ``alpha`` strictly above the opponent-assignment bound),
    and the strategy whose exact expected winnings are negative --
    money actually lost on a bet the assignment called safe.  Point
    refs are relative to the *relabeled* system's index.
    """
    psys = witness.relabeled
    formula = f"Determines-safe-bets(S) fails via Bet({witness.fact.name}, {witness.alpha})"
    escape = DerivationNode(
        rule="escaping-point",
        formula="d in S_ic \\ Tree^j_ic",
        point=_point_ref(psys, witness.point),
        holds=True,
        definition=(
            "Theorem 8(b) (proof): pick c and d with d in the agent's "
            "sample space under S but outside the opponent's joint space "
            "Tree^j_ic; relabel the tree so the runs through G_d carry "
            "most of the measure (boost_path_labeling)"
        ),
        detail={
            "escaping_time": witness.escaping_point.time,
            "fact": witness.fact.name,
        },
    )
    accepted = DerivationNode(
        rule="bet-accepted",
        formula=f"(P_S, c) |= K_i^{witness.alpha} {witness.fact.name}",
        point=_point_ref(psys, witness.point),
        holds=True,
        definition=(
            "Section 5 / Theorem 8(b): under the relabeled system the "
            "agent's S-assignment assigns the fact inner probability "
            "alpha, strictly above the opponent-assignment bound, so "
            "S calls Bet(phi, alpha) safe"
        ),
        detail={
            "alpha": witness.alpha,
            "alpha_opponent": witness.alpha_opponent,
        },
    )
    loses = DerivationNode(
        rule="expected-loss",
        formula="E[W_f] < 0 for the targeted strategy f",
        point=_point_ref(psys, witness.point),
        holds=False,
        definition=(
            "Theorem 8(b) (proof): the opponent offers 1/alpha at c's "
            "local state; against the opponent assignment the accepted "
            "bet has strictly negative expected winnings -- S admitted "
            "an unsafe bet, so S does not determine safe bets"
        ),
        detail={"expected_loss": witness.expected_loss},
    )
    root = DerivationNode(
        rule="theorem8-witness",
        formula=formula,
        point=_point_ref(psys, witness.point),
        holds=False,
        definition=(
            "Theorem 8(b): S^j is the maximum assignment determining "
            "safe bets; any S not<= S^j is refuted constructively"
        ),
        detail={
            "agent": agent,
            "opponent": opponent,
            "alpha": witness.alpha,
            "alpha_opponent": witness.alpha_opponent,
            "expected_loss": witness.expected_loss,
        },
        children=(escape, accepted, loses),
    )
    return Derivation(
        assignment=f"S vs opp({opponent})",
        formula=formula,
        point=_point_ref(psys, witness.point),
        root=root,
    )
