"""Common knowledge and its probabilistic generalization (Section 8)."""

from fractions import Fraction

import pytest

from repro.attack import build_ca1, build_ca2
from repro.core import standard_assignments
from repro.logic import (
    CommonKnows,
    CommonKnowsProb,
    Model,
    Prop,
    common_knowledge_points,
    everyone_knows_points,
    fixed_point_axiom_holds,
    greatest_fixed_point_is_greatest,
    induction_rule_holds,
    iterated_everyone_knows,
    parse,
)


@pytest.fixture(scope="module")
def ca2():
    return build_ca2(messengers=3)


@pytest.fixture(scope="module")
def ca1():
    return build_ca1(messengers=3)


@pytest.fixture(scope="module")
def ca2_model(ca2):
    post = standard_assignments(ca2.psys)["post"]
    return Model(post, {"coord": ca2.coordinated})


@pytest.fixture(scope="module")
def ca1_model(ca1):
    post = standard_assignments(ca1.psys)["post"]
    return Model(post, {"coord": ca1.coordinated})


GROUP = (0, 1)
# With 3 messengers the weakest guarantee is A's confidence that B learned,
# 1 - 2**-3 = 7/8; any eps <= 7/8 is achieved by CA2, so test at 4/5.
EPS = Fraction(4, 5)


class TestSetLevelOperators:
    def test_everyone_knows_is_intersection(self, ca2_model):
        target = ca2_model.extension(Prop("coord"))
        joint = everyone_knows_points(ca2_model, GROUP, target)
        for agent in GROUP:
            solo = everyone_knows_points(ca2_model, (agent,), target)
            assert joint <= solo

    def test_common_knowledge_below_everyone(self, ca1_model):
        target = ca1_model.extension(Prop("coord"))
        everyone = everyone_knows_points(ca1_model, GROUP, target)
        common = common_knowledge_points(ca1_model, GROUP, target)
        assert common <= everyone

    def test_gfp_is_a_fixed_point(self, ca2_model):
        target = ca2_model.extension(Prop("coord"))
        for alpha in (None, EPS):
            common = common_knowledge_points(ca2_model, GROUP, target, alpha)
            again = everyone_knows_points(ca2_model, GROUP, target & common, alpha)
            assert again == common

    def test_gfp_is_greatest(self, ca2_model):
        target = ca2_model.extension(Prop("coord"))
        all_points = frozenset(ca2_model.system.points)
        candidates = [all_points, target, frozenset()]
        assert greatest_fixed_point_is_greatest(
            ca2_model, GROUP, Prop("coord"), candidates
        )
        assert greatest_fixed_point_is_greatest(
            ca2_model, GROUP, Prop("coord"), candidates, alpha=EPS
        )

    def test_iterated_e_chain_decreases(self, ca1_model):
        target = ca1_model.extension(Prop("coord"))
        chain = iterated_everyone_knows(ca1_model, GROUP, target, 4, alpha=EPS)
        for earlier, later in zip(chain, chain[1:]):
            assert later <= earlier

    def test_common_below_iterated_chain(self, ca1_model):
        # C^alpha implies (E^alpha)^k for every k (the converse fails).
        target = ca1_model.extension(Prop("coord"))
        common = common_knowledge_points(ca1_model, GROUP, target, EPS)
        for level in iterated_everyone_knows(ca1_model, GROUP, target, 4, alpha=EPS):
            assert common <= level


class TestLaws:
    def test_fixed_point_axiom_plain(self, ca2_model):
        assert fixed_point_axiom_holds(ca2_model, GROUP, Prop("coord"))

    def test_fixed_point_axiom_probabilistic(self, ca2_model):
        assert fixed_point_axiom_holds(ca2_model, GROUP, Prop("coord"), alpha=EPS)

    def test_fixed_point_axiom_on_ca1(self, ca1_model):
        assert fixed_point_axiom_holds(ca1_model, GROUP, Prop("coord"), alpha=EPS)

    def test_induction_rule_with_true_premise(self, ca2_model):
        # psi = true: E^eps(coord) valid => C^eps(coord) valid.
        assert induction_rule_holds(
            ca2_model, GROUP, parse("true"), Prop("coord"), alpha=EPS
        )

    def test_induction_rule_plain(self, ca2_model):
        assert induction_rule_holds(ca2_model, GROUP, parse("true"), Prop("coord"))


class TestAstOperators:
    def test_common_knows_prob_everywhere_in_ca2(self, ca2_model):
        formula = CommonKnowsProb(GROUP, EPS, Prop("coord"))
        assert ca2_model.valid(formula)

    def test_common_knows_prob_fails_in_ca1(self, ca1_model):
        formula = CommonKnowsProb(GROUP, EPS, Prop("coord"))
        assert not ca1_model.valid(formula)

    def test_plain_common_knowledge_fails_everywhere_nontrivial(self, ca2_model):
        # deterministic common knowledge of coordination is unattainable
        formula = CommonKnows(GROUP, Prop("coord"))
        assert not ca2_model.valid(formula)

    def test_parsed_equivalent(self, ca2_model):
        parsed = parse("C{0,1}^4/5 coord")
        assert ca2_model.extension(parsed) == ca2_model.extension(
            CommonKnowsProb(GROUP, EPS, Prop("coord"))
        )
