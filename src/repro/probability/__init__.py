"""Exact finite measure theory: the probabilistic substrate of the paper.

Everything the paper does with probability -- spaces on runs (Section 3),
induced spaces on points (Section 5), inner/outer measures for
non-measurable facts (Sections 5 and 7), conditioning along the assignment
lattice (Proposition 5), and the inner/outer expectations of Appendix B.2 --
is built from the primitives in this package.
"""

from .bitset import (
    BACKENDS,
    IntervalCache,
    OutcomeIndex,
    get_default_backend,
    kernel_totals,
    merge_kernel_totals,
    reset_kernel_totals,
    set_default_backend,
    use_backend,
)
from .algebra import (
    atoms_from_generators,
    atoms_of_explicit_algebra,
    check_partition,
    common_refinement,
    explicit_closure,
    is_partition,
    restrict_partition,
)
from .distributions import (
    at_least_one_survives,
    bernoulli,
    biased_coin,
    binomial_survivors,
    fair_coin,
    joint,
    point_mass,
    sequences,
    space_of,
    uniform_choice,
    weighted,
)
from .expectation import (
    attainability_witnesses,
    conditional_expectation,
    indicator,
    law_of_total_expectation_check,
    scaled_indicator,
)
from .fractionutil import (
    HALF,
    ONE,
    ZERO,
    as_fraction,
    check_probability,
    format_fraction,
)
from .space import CellMeasure, FiniteProbabilitySpace

__all__ = [
    "CellMeasure",
    "FiniteProbabilitySpace",
    "OutcomeIndex",
    "IntervalCache",
    "BACKENDS",
    "get_default_backend",
    "kernel_totals",
    "merge_kernel_totals",
    "reset_kernel_totals",
    "set_default_backend",
    "use_backend",
    "as_fraction",
    "check_probability",
    "format_fraction",
    "ZERO",
    "ONE",
    "HALF",
    "atoms_from_generators",
    "atoms_of_explicit_algebra",
    "check_partition",
    "common_refinement",
    "explicit_closure",
    "is_partition",
    "restrict_partition",
    "point_mass",
    "bernoulli",
    "fair_coin",
    "biased_coin",
    "uniform_choice",
    "weighted",
    "joint",
    "sequences",
    "binomial_survivors",
    "at_least_one_survives",
    "space_of",
    "indicator",
    "scaled_indicator",
    "conditional_expectation",
    "law_of_total_expectation_check",
    "attainability_witnesses",
]
