"""Betting-layer provenance: certificates and witnesses as derivations."""

from fractions import Fraction

import pytest

from repro.betting import (
    safety_certificate,
    safety_derivation,
    strategy_payload,
    theorem8_witness,
    theorem8_witness_derivation,
)
from repro.reporting import fraction_from_json
from repro.core import PostAssignment, opponent_assignment
from repro.examples_lib import three_agent_coin_system
from repro.obs import (
    decode_derivation,
    downgrade,
    encode_derivation,
    upgrade,
)

HALF = Fraction(1, 2)


@pytest.fixture(scope="module")
def coin():
    return three_agent_coin_system()


@pytest.fixture(scope="module")
def against_p2(coin):
    return opponent_assignment(coin.psys, 1)


@pytest.fixture(scope="module")
def against_p3(coin):
    return opponent_assignment(coin.psys, 2)


@pytest.fixture(scope="module")
def c1(coin):
    return coin.psys.system.points_at_time(1)[0]


def _safe_certificate(coin, against_p2, c1):
    return safety_certificate(against_p2, 0, 1, c1, coin.heads, HALF)


def _unsafe_certificate(coin, against_p3, c1):
    return safety_certificate(against_p3, 0, 2, c1, coin.heads, HALF)


class TestSafetyDerivation:
    def test_safe_bet_tree_shape(self, coin, against_p2, c1):
        certificate = _safe_certificate(coin, against_p2, c1)
        assert certificate.safe
        derivation = safety_derivation(against_p2, certificate)
        assert derivation.root.rule == "bet-safe"
        assert derivation.root.holds is True
        assert derivation.assignment == against_p2.name
        rules = [child.rule for child in derivation.root.children]
        assert rules[-1] == "inner-witness"
        assert rules[:-1] == ["break-even"] * len(certificate.candidates)
        for child in derivation.root.children[:-1]:
            assert child.holds is True
            assert fraction_from_json(child.detail["inner_probability"]) >= HALF

    def test_unsafe_bet_carries_the_refutation(self, coin, against_p3, c1):
        certificate = _unsafe_certificate(coin, against_p3, c1)
        assert not certificate.safe
        derivation = safety_derivation(against_p3, certificate)
        assert derivation.root.rule == "bet-unsafe"
        assert derivation.root.holds is False
        last = derivation.root.children[-1]
        assert last.rule == "refuting-strategy"
        strategy = last.detail["strategy"]
        assert strategy is not None
        assert strategy["agent"] == 2
        assert any(not child.holds for child in derivation.root.children[:-1])

    def test_fingerprint_is_stable_across_rebuilds(self, coin, against_p2, c1):
        first = safety_derivation(against_p2, _safe_certificate(coin, against_p2, c1))
        second = safety_derivation(against_p2, _safe_certificate(coin, against_p2, c1))
        assert first.fingerprint() == second.fingerprint()

    def test_safe_and_unsafe_fingerprints_differ(
        self, coin, against_p2, against_p3, c1
    ):
        safe = safety_derivation(against_p2, _safe_certificate(coin, against_p2, c1))
        unsafe = safety_derivation(
            against_p3, _unsafe_certificate(coin, against_p3, c1)
        )
        assert safe.fingerprint() != unsafe.fingerprint()

    def test_round_trips_through_both_schemas(self, coin, against_p3, c1):
        derivation = safety_derivation(
            against_p3, _unsafe_certificate(coin, against_p3, c1)
        )
        doc_1 = derivation.json_ready()
        doc_2 = encode_derivation(derivation)
        assert decode_derivation(doc_1).fingerprint() == derivation.fingerprint()
        assert decode_derivation(doc_2).fingerprint() == derivation.fingerprint()
        assert downgrade(upgrade(doc_1)) == doc_1


class TestTheorem8WitnessDerivation:
    @pytest.fixture(scope="class")
    def witness(self, coin):
        found = theorem8_witness(
            coin.psys, lambda psys: PostAssignment(psys), agent=0, opponent=2
        )
        assert found is not None
        return found

    def test_tree_records_the_constructive_refutation(self, witness):
        derivation = theorem8_witness_derivation(witness, agent=0, opponent=2)
        assert derivation.root.rule == "theorem8-witness"
        assert derivation.root.holds is False
        rules = [child.rule for child in derivation.root.children]
        assert rules == ["escaping-point", "bet-accepted", "expected-loss"]
        loss = fraction_from_json(
            derivation.root.children[-1].detail["expected_loss"]
        )
        assert loss == witness.expected_loss < 0

    def test_alpha_gap_is_recorded(self, witness):
        derivation = theorem8_witness_derivation(witness, agent=0, opponent=2)
        detail = derivation.root.detail
        assert fraction_from_json(detail["alpha"]) > fraction_from_json(
            detail["alpha_opponent"]
        )

    def test_round_trips_through_schema_2(self, witness):
        derivation = theorem8_witness_derivation(witness, agent=0, opponent=2)
        decoded = decode_derivation(encode_derivation(derivation))
        assert decoded.fingerprint() == derivation.fingerprint()


class TestStrategyPayload:
    def test_none_passes_through(self):
        assert strategy_payload(None) is None

    def test_payload_is_sorted_and_exact(self, coin, against_p3, c1):
        certificate = _unsafe_certificate(coin, against_p3, c1)
        payload = strategy_payload(certificate.refutation)
        assert payload["agent"] == 2
        locals_ = [entry["local"] for entry in payload["table"]]
        assert locals_ == sorted(locals_)
        for entry in payload["table"]:
            assert isinstance(entry["payoff"], Fraction)
            assert entry["payoff"] > 0
