"""Command-line interface: ``python -m tools.tracereport TRACE``."""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import AuditError, MetricsError, TraceError
from repro.obs import read_audit_bundle, read_snapshot, read_trace
from repro.reporting import json_ready

from .report import (
    render_audit,
    render_metrics,
    render_report,
    summarize,
    summarize_audit,
    summarize_metrics,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tracereport",
        description=(
            "Summarise a repro-trace/1 JSONL trace: top timing spans, "
            "counters, measure-kernel cache hit rate, gfp iteration "
            "counts, and the sweep engine's retry histogram."
        ),
    )
    parser.add_argument("trace", help="path to a repro-trace/1 JSONL file")
    parser.add_argument(
        "--metrics",
        help=(
            "repro-metrics/1 snapshot to fold in as a worker-merged "
            "counters section"
        ),
    )
    parser.add_argument(
        "--audit",
        help=(
            "repro-audit/1 bundle to fold in as an audit section "
            "(chain totals plus the hash-consing dedup ratio)"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the summary as JSON instead of plain-text tables",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        records = read_trace(args.trace)
    except TraceError as error:
        print(f"tracereport: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"tracereport: cannot read {args.trace!r}: {error}", file=sys.stderr)
        return 2
    summary = summarize(records)
    if args.metrics:
        try:
            snapshot = read_snapshot(args.metrics)
        except MetricsError as error:
            print(f"tracereport: {error}", file=sys.stderr)
            return 2
        except OSError as error:
            print(
                f"tracereport: cannot read {args.metrics!r}: {error}", file=sys.stderr
            )
            return 2
        summary["metrics"] = summarize_metrics(snapshot)
    if args.audit:
        try:
            bundle = read_audit_bundle(args.audit)
        except AuditError as error:
            print(f"tracereport: {error}", file=sys.stderr)
            return 2
        except OSError as error:
            print(
                f"tracereport: cannot read {args.audit!r}: {error}", file=sys.stderr
            )
            return 2
        summary["audit"] = summarize_audit(bundle)
    try:
        if args.json:
            print(json.dumps(json_ready(summary), indent=2))
        else:
            report = render_report(summary)
            if "metrics" in summary:
                report += "\n\n" + render_metrics(summary["metrics"])
            if "audit" in summary:
                report += "\n\n" + render_audit(summary["audit"])
            print(report)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; the summary it asked
        # for was delivered, so this is not an error.
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
