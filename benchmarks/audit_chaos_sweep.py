"""CI driver: chaos-kill an audited sweep, resume it, verify the bundle.

The acceptance scenario behind the ``verify-audit`` CI job, end to end:

1. Run :func:`repro.robustness.robust_guarantee_sweep` with ``audit=True``
   under a task function that dies mid-sweep (every attempt on one task
   faults), leaving a partial checkpoint and a partial audit bundle.
2. Resume with :func:`repro.robustness.resume_guarantee_sweep`
   (``audit=True`` again): the engine skips checkpointed rows, backfills
   any audit leaves the kill swallowed, and continues the Merkle chain.
3. Assert the merged rows equal the serial sweep's, then run the full
   ``tools/verifyaudit`` tier stack over the bundle -- hash chain,
   checkpoint cross-check, and derivation replay -- and demand exit 0.

Artifacts (checkpoint, bundle, ``repro-verifyaudit/1`` report) land in
``--artifact-dir`` for the CI upload step; the chain root is printed so
the job log itself witnesses what was certified.  Exit status: 0 when
the resumed bundle verifies clean, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from fractions import Fraction
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT))

from repro.attack.sweep import guarantee_sweep  # noqa: E402
from repro.errors import RetryExhaustedError  # noqa: E402
from repro.robustness import (  # noqa: E402
    RetryPolicy,
    default_audit_path,
    resume_guarantee_sweep,
    robust_guarantee_sweep,
)
from repro.robustness.faults import InjectedFault  # noqa: E402

from tools.verifyaudit import render_report, verify_audit  # noqa: E402

MESSENGERS = [1, 2]
LOSSES = [Fraction(1, 2)]
KILL_INDEX = 2


def _dies_mid_sweep(task, context):
    from repro.attack.sweep import sweep_row_of

    if context.index == KILL_INDEX:
        raise InjectedFault(f"scheduled chaos death on task {KILL_INDEX}")
    return sweep_row_of(task)


_dies_mid_sweep.wants_context = True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--artifact-dir",
        default="audit-artifacts",
        help="where the checkpoint, bundle, and report are written",
    )
    args = parser.parse_args(argv)

    artifact_dir = Path(args.artifact_dir)
    artifact_dir.mkdir(parents=True, exist_ok=True)
    checkpoint = artifact_dir / "audited-sweep.jsonl"
    bundle = Path(default_audit_path(checkpoint))

    print(f"phase 1: audited sweep, chaos death on task {KILL_INDEX}")
    try:
        robust_guarantee_sweep(
            MESSENGERS,
            LOSSES,
            max_workers=1,
            policy=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
            checkpoint_path=checkpoint,
            task_function=_dies_mid_sweep,
            sleep=lambda _seconds: None,
            audit=True,
        )
    except RetryExhaustedError as error:
        print(f"  sweep died as scheduled: {error}")
    else:
        print("  ERROR: the chaos sweep was supposed to die", file=sys.stderr)
        return 1

    print("phase 2: resume (healthy task function, chain continues)")
    rows = resume_guarantee_sweep(
        checkpoint, MESSENGERS, LOSSES, max_workers=1, audit=True
    )
    if rows != guarantee_sweep(MESSENGERS, LOSSES):
        print("  ERROR: resumed rows differ from serial sweep", file=sys.stderr)
        return 1
    print(f"  {len(rows)} rows, identical to the serial sweep")

    print("phase 3: verifyaudit (hash + checkpoint + replay tiers)")
    report = verify_audit(str(bundle))
    report_path = artifact_dir / "verifyaudit-report.json"
    report_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(render_report(report))
    print(f"report: {report_path}")
    print(f"chain root: {report['root']}")
    return 0 if report["verdict"] == "clean" else 1


if __name__ == "__main__":
    sys.exit(main())
