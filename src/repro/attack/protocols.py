"""The probabilistic coordinated attack protocols of Sections 4 and 8.

Two generals A (agent 0) and B (agent 1) must coordinate an attack; the
only communication is by messengers, each captured by the enemy
independently with probability 1/2.  General A tosses a fair coin to decide
whether to attack.

* **CA1**: at round 0, A tosses and sends ``k`` messengers to B iff heads;
  at round 1, B sends a messenger telling A whether it learned the outcome;
  at round 2, A attacks iff heads (regardless of what it heard) and B
  attacks iff it learned heads.
* **CA2**: identical except B never reports back -- which is exactly what
  restores every agent's confidence at every point.
* **CA0** ("never attack"): the degenerate protocol showing part 3 of
  Proposition 11 is not vacuous -- it achieves even the ``P_fut`` level of
  coordination, but the generals never actually attack.

Both generals' decisions live in their local states, so "A attacks" and
"B attacks" are facts about the run readable from the final global state.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Tuple

from ..core.facts import Fact
from ..core.model import Run
from ..probability.fractionutil import FractionLike, as_fraction
from ..systems.agents import Agent, ActionDistribution, act, certainly, chance
from ..systems.channels import CollapsingLossyChannel
from ..systems.messages import Message
from ..systems.synchronous import SyncProtocol, protocol_system
from ..trees.probabilistic_system import ProbabilisticSystem

GENERAL_A = 0
GENERAL_B = 1

COIN_NEWS = "coin-landed-heads"
B_LEARNED = "b-learned"
B_NO_NEWS = "b-no-news"


class GeneralA(Agent):
    """General A: tosses the coin, maybe sends messengers, then decides.

    With ``adaptive=True``, A implements the end-of-Section-8 suggestion:
    it refrains from attacking when the information in its local state
    (B's "no news" report) guarantees the attack would be uncoordinated.
    """

    def __init__(
        self, messengers: int, attack_on_heads: bool = True, adaptive: bool = False
    ) -> None:
        self.messengers = messengers
        self.attack_on_heads = attack_on_heads
        self.adaptive = adaptive

    def initial_state(self, input_value: Hashable) -> Hashable:
        return "init"

    def step(self, state, inbox, round_number: int) -> ActionDistribution:
        if round_number == 0:
            to_b = tuple(
                Message(GENERAL_A, GENERAL_B, COIN_NEWS) for _ in range(self.messengers)
            )
            return chance(
                [
                    (Fraction(1, 2), act("heads", *to_b)),
                    (Fraction(1, 2), act("tails")),
                ]
            )
        if round_number == 2:
            coin = state if isinstance(state, str) else state[0]
            heard = _hearing(inbox)
            attacking = coin == "heads" and self.attack_on_heads
            if self.adaptive and heard == "heard-b-no-news":
                attacking = False
            decision = "attack" if attacking else "no-attack"
            return certainly((coin, decision, heard))
        return certainly(state)


def _hearing(inbox) -> str:
    contents = {message.content for message in inbox}
    if B_LEARNED in contents:
        return "heard-b-learned"
    if B_NO_NEWS in contents:
        return "heard-b-no-news"
    return "heard-nothing"


class GeneralB(Agent):
    """General B: listens for messengers, optionally reports, then decides."""

    def __init__(self, reports_back: bool, attacks: bool = True) -> None:
        self.reports_back = reports_back
        self.attacks = attacks

    def initial_state(self, input_value: Hashable) -> Hashable:
        return "init"

    def step(self, state, inbox, round_number: int) -> ActionDistribution:
        if round_number == 1:
            learned = any(message.content == COIN_NEWS for message in inbox)
            new_state = "learned-heads" if learned else "no-news"
            if self.reports_back:
                content = B_LEARNED if learned else B_NO_NEWS
                return certainly(new_state, Message(GENERAL_B, GENERAL_A, content))
            return certainly(new_state)
        if round_number == 2:
            decision = (
                "attack" if (state == "learned-heads" and self.attacks) else "no-attack"
            )
            return certainly((state, decision))
        return certainly(state)


@dataclass
class AttackSystem:
    """A coordinated-attack protocol unfolded into a probabilistic system."""

    name: str
    psys: ProbabilisticSystem
    a_attacks: Fact
    b_attacks: Fact
    coordinated: Fact
    group: Tuple[int, int] = (GENERAL_A, GENERAL_B)


def _decision_of(run: Run, agent: int) -> str:
    final = run.states[-1].local_states[agent]
    state = final[0] if isinstance(final, tuple) and isinstance(final[1], int) else final
    if isinstance(state, tuple):
        for component in state:
            if component in ("attack", "no-attack"):
                return component
    return "no-attack"


def _build(name: str, general_a: GeneralA, general_b: GeneralB, loss: FractionLike) -> AttackSystem:
    protocol = SyncProtocol(
        agents=[general_a, general_b],
        channel=CollapsingLossyChannel(as_fraction(loss)),
        horizon=3,
    )
    psys = protocol_system(protocol, {"the-enemy": [None, None]})
    a_attacks = Fact.about_run(
        lambda run: _decision_of(run, GENERAL_A) == "attack", name="a_attacks"
    )
    b_attacks = Fact.about_run(
        lambda run: _decision_of(run, GENERAL_B) == "attack", name="b_attacks"
    )
    return AttackSystem(
        name=name,
        psys=psys,
        a_attacks=a_attacks,
        b_attacks=b_attacks,
        coordinated=a_attacks.iff(b_attacks),
    )


def build_ca1(messengers: int = 10, loss: FractionLike = Fraction(1, 2)) -> AttackSystem:
    """CA1: B reports back whether it learned the outcome."""
    return _build(
        "CA1", GeneralA(messengers), GeneralB(reports_back=True), loss
    )


def build_ca2(messengers: int = 10, loss: FractionLike = Fraction(1, 2)) -> AttackSystem:
    """CA2: B stays silent -- the adaptive-confidence protocol."""
    return _build(
        "CA2", GeneralA(messengers), GeneralB(reports_back=False), loss
    )


def build_ca1_adaptive(
    messengers: int = 10, loss: FractionLike = Fraction(1, 2)
) -> AttackSystem:
    """CA1 made adaptive: A aborts on hearing B's "no news" report.

    The end of Section 8 suggests converting algorithms to *adaptive* ones
    that modify their actions in light of what they have learned.  Turning
    A's certain-failure state into an abort removes the Section 4 pathology
    and lifts CA1 from the ``P_prior`` level to the ``P_post`` level of
    guarantee -- with B's report round as the only overhead relative to CA2.
    """
    return _build(
        "CA1-adaptive",
        GeneralA(messengers, adaptive=True),
        GeneralB(reports_back=True),
        loss,
    )


def build_never_attack(messengers: int = 10, loss: FractionLike = Fraction(1, 2)) -> AttackSystem:
    """CA0: nobody ever attacks; trivially coordinated at every point."""
    return _build(
        "CA0",
        GeneralA(messengers, attack_on_heads=False),
        GeneralB(reports_back=False, attacks=False),
        loss,
    )
