"""Merkle-chained audit bundles: schema ``repro-audit/1``.

A checkpointed guarantee sweep (Section 8, Proposition 11) already
leaves two kinds of evidence: exact rows in the JSONL checkpoint, and --
with provenance on -- a ``repro-explain/1`` derivation of each row's
``post_threshold`` at its witness point (the Section 5 inner-measure
computation behind the ``C^eps phi_CA`` claim).  Neither artifact lets a
third party check the sweep *without recomputing it*: rows do not commit
to their derivations, and derivations do not chain to each other, so a
tampered row or a swapped derivation is undetectable from the files
alone.

An **audit bundle** closes that gap.  It is an append-only JSONL file
(schema ``repro-audit/1``) written alongside the checkpoint:

* a ``header`` record naming the schemas; its canonical hash is the
  chain's genesis value;
* ``node`` records streaming each distinct derivation subtree once,
  children before parents, keyed by the Merkle fingerprints of
  :func:`repro.obs.derivstore.node_fingerprint` (the hash-consed
  ``repro-explain/2`` table, incrementally);
* ``leaf`` records, one per completed row: a **leaf hash** over the
  canonical JSON of (task fingerprint, exact row payload, derivation
  root fingerprint, task index), and a **chain hash** linking it to the
  previous leaf -- ``chain = sha256(prev + leaf_hash)``.

The final chain value is the bundle's *root*: it commits to every row,
every task identity, and (through the root fingerprints, transitively)
every node of every derivation DAG.  Publishing the root alone lets
anyone with the bundle detect a single-bit change anywhere -- the
``oracle_gamble_runner`` / ``verify_audit_chain`` witness-chain idea,
applied to Section 8 sweeps.  ``tools/verifyaudit`` is the replayer.

Like the checkpoint it shadows, a bundle must survive being killed
mid-write: :func:`read_audit_bundle` drops an undecodable *final* line
(the torn tail) while treating earlier garbage as the hard error it is,
and :class:`AuditBundleWriter` physically truncates a torn tail before
resuming the chain, so appends always land on a record boundary.
Everything is content-pure: no clocks, no pids, no floats (exact
``"p/q"`` strings only, enforced by
:func:`repro.obs.provenance.json_pure`), so two runs of the same sweep
produce byte-identical bundles with identical roots.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..errors import AuditError, ProvenanceError
from .derivstore import EXPLAIN_SCHEMA_2, DerivationStore
from .provenance import Derivation, json_pure

__all__ = [
    "AUDIT_SCHEMA",
    "AuditBundle",
    "AuditBundleWriter",
    "bundle_root",
    "chain_hash",
    "genesis_hash",
    "header_record",
    "leaf_hash",
    "read_audit_bundle",
    "verify_bundle",
]

#: Identifier written into (and demanded from) every audit bundle.
AUDIT_SCHEMA = "repro-audit/1"


def _canonical(payload) -> str:
    """The canonical serialisation every audit hash is computed over
    (same convention as the derivation fingerprints)."""
    return json.dumps(payload, sort_keys=True)


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def header_record() -> Dict[str, object]:
    """The bundle's first record: schema markers, nothing else.

    Content-pure by construction -- no clock, no host, no pid -- so the
    genesis hash (and therefore every chain value) is a function of the
    sweep's content alone.
    """
    return {
        "type": "header",
        "schema": AUDIT_SCHEMA,
        "explain_schema": EXPLAIN_SCHEMA_2,
    }


def genesis_hash(header: Dict[str, object]) -> str:
    """The chain's genesis: the hash of the canonical header record."""
    return _sha256(_canonical(json_pure(header)))


def leaf_hash(
    index: int,
    task: Dict[str, object],
    row: Dict[str, object],
    root_ref: Optional[str],
) -> str:
    """The leaf hash of one completed sweep row.

    Deterministic. A pure function of the task fingerprint (the Section 8
    sweep coordinates), the exact row payload, the derivation root
    fingerprint, and the task's position -- the exact quadruple a third
    party can recompute from the checkpoint and the derivation DAG.
    Exact. Payloads pass through :func:`repro.obs.provenance.json_pure`,
    so a float anywhere (a rounded probability) is an error, never a
    silently different hash.
    """
    return _sha256(
        _canonical(
            {
                "index": index,
                "task": json_pure(task),
                "row": json_pure(row),
                "root_ref": root_ref,
            }
        )
    )


def chain_hash(prev: str, leaf: str) -> str:
    """One Merkle chain link: ``sha256(prev + leaf_hash)``.

    Each link commits to the entire prefix, so the final link (the
    bundle *root*) commits to every leaf in order -- remove, reorder, or
    alter any leaf and the root changes.
    """
    return _sha256(prev + leaf)


@dataclass
class AuditBundle:
    """One parsed ``repro-audit/1`` bundle, structure only.

    ``nodes`` preserves file order (children before parents when the
    writer produced the file), ``leaves`` preserves chain order.
    Parsing checks structure; :func:`verify_bundle` checks the hashes.
    """

    header: Dict[str, object]
    nodes: Dict[str, Dict] = field(default_factory=dict)
    leaves: List[Dict] = field(default_factory=list)

    @property
    def genesis(self) -> str:
        return genesis_hash(self.header)

    @property
    def root(self) -> str:
        """The bundle's Merkle root: the last chain value (or genesis)."""
        if self.leaves:
            return str(self.leaves[-1]["chain"])
        return self.genesis

    def leaf_indexes(self) -> FrozenSet[int]:
        """The task indexes with at least one leaf in the bundle."""
        return frozenset(int(leaf["index"]) for leaf in self.leaves)


def bundle_root(path) -> str:
    """The Merkle root of the bundle at ``path`` (structure-checked)."""
    return read_audit_bundle(path).root


_LEAF_KEYS = frozenset({"index", "task", "row", "root_ref", "leaf_hash", "prev", "chain"})


def _parse_record(record, position: int) -> Tuple[str, Dict]:
    """Classify one decoded line; raise :class:`AuditError` if malformed."""
    if not isinstance(record, dict) or "type" not in record:
        raise AuditError(
            f"audit bundle line {position} is not a typed record"
        )
    kind = record["type"]
    if kind == "header":
        return kind, record
    if kind == "node":
        if not isinstance(record.get("ref"), str) or not isinstance(
            record.get("node"), dict
        ):
            raise AuditError(
                f"audit bundle line {position} is a malformed node record"
            )
        return kind, record
    if kind == "leaf":
        missing = _LEAF_KEYS - set(record)
        if missing:
            raise AuditError(
                f"audit bundle line {position} is a leaf record missing "
                f"{sorted(missing)}"
            )
        return kind, record
    raise AuditError(
        f"audit bundle line {position} has unknown record type {kind!r}"
    )


def _read_lines(path) -> List[Tuple[int, str]]:
    """The bundle's non-blank lines with 1-based positions, torn tail
    dropped.

    A line that does not decode as JSON is tolerated only as the *final*
    line (the half-written tail of a killed writer -- exactly the
    tolerance :meth:`repro.robustness.checkpoint.SweepCheckpoint.load`
    extends to checkpoints); anywhere else it is corruption and raises
    :class:`~repro.errors.AuditError`.
    """
    try:
        with open(os.fspath(path), "r", encoding="utf-8") as handle:
            raw = handle.read().splitlines()
    except FileNotFoundError:
        raise AuditError(f"audit bundle {os.fspath(path)!r} does not exist") from None
    lines = [
        (position + 1, line)
        for position, line in enumerate(raw)
        if line.strip()
    ]
    for offset, (position, line) in enumerate(lines):
        try:
            json.loads(line)
        except json.JSONDecodeError:
            if offset == len(lines) - 1:
                return lines[:offset]
            raise AuditError(
                f"audit bundle line {position} is not JSON but is not the "
                "final line; the file is corrupt, not merely torn"
            ) from None
    return lines


def read_audit_bundle(path) -> AuditBundle:
    """Parse the ``repro-audit/1`` bundle at ``path``.

    Tolerates exactly one kind of damage -- an undecodable final line,
    the torn tail of a killed writer -- by dropping it; the surviving
    prefix is a complete, verifiable bundle (every chain prefix is).
    Anything else (missing or foreign header, unknown record type,
    structurally incomplete record, garbage before the final line)
    raises :class:`~repro.errors.AuditError`: a bundle is evidence, and
    evidence that does not parse cleanly proves nothing.
    """
    lines = _read_lines(path)
    if not lines:
        raise AuditError(
            f"audit bundle {os.fspath(path)!r} has no intact records "
            "(empty, or nothing but a torn tail)"
        )
    position, first = lines[0]
    kind, record = _parse_record(json.loads(first), position)
    if kind != "header":
        raise AuditError(
            f"audit bundle {os.fspath(path)!r} does not start with a header record"
        )
    if record.get("schema") != AUDIT_SCHEMA:
        raise AuditError(
            f"audit bundle {os.fspath(path)!r} has schema "
            f"{record.get('schema')!r}, expected {AUDIT_SCHEMA!r}"
        )
    bundle = AuditBundle(header=record)
    for position, line in lines[1:]:
        kind, record = _parse_record(json.loads(line), position)
        if kind == "header":
            raise AuditError(
                f"audit bundle line {position} is a second header record"
            )
        if kind == "node":
            bundle.nodes[record["ref"]] = record["node"]
        else:
            bundle.leaves.append(record)
    return bundle


def verify_bundle(bundle: AuditBundle) -> List[str]:
    """Recompute every hash in a bundle; return the list of defects.

    An empty list certifies the bundle's *internal* consistency: every
    node payload hashes to the fingerprint it is filed under and
    references only already-streamed children (so the tables are genuine
    Merkle DAGs), every leaf hash matches its recorded (index, task,
    row, root_ref) content, every chain link extends the previous one
    from the genesis, every referenced derivation root exists, and
    duplicate leaves for one index (a re-run after a torn checkpoint
    tail) agree with each other -- rows are deterministic, so they must.

    What it deliberately does *not* do: re-derive the Section 5/8
    mathematics or compare against the checkpoint.  Those are the
    replayer's jobs (``tools/verifyaudit`` runs
    :func:`repro.logic.explain.audit_derivation` per DAG and
    cross-checks checkpoint rows); this function is the pure-hash tier
    a third party can run with no compute budget.
    """
    defects: List[str] = []
    streamed: Set[str] = set()
    for order, (ref, payload) in enumerate(bundle.nodes.items()):
        recomputed = _sha256(_canonical(payload))
        if recomputed != ref:
            defects.append(
                f"node {order}: payload hashes to {recomputed}, filed under {ref}"
            )
        children = payload.get("children")
        if not isinstance(children, list):
            defects.append(f"node {order} ({ref}): children is not a list")
        else:
            for child in children:
                if child not in streamed:
                    defects.append(
                        f"node {order} ({ref}): child {child} not streamed "
                        "before its parent"
                    )
        streamed.add(ref)
    prev = bundle.genesis
    by_index: Dict[int, Dict] = {}
    for order, leaf in enumerate(bundle.leaves):
        try:
            index = int(leaf["index"])
            recomputed = leaf_hash(index, leaf["task"], leaf["row"], leaf["root_ref"])
        except (ProvenanceError, TypeError, ValueError) as error:
            defects.append(f"leaf {order}: payload is not content-pure: {error}")
            prev = str(leaf["chain"])
            continue
        if recomputed != leaf["leaf_hash"]:
            defects.append(
                f"leaf {order} (index {index}): leaf hash {leaf['leaf_hash']} "
                f"does not match recomputed {recomputed}"
            )
        if leaf["prev"] != prev:
            defects.append(
                f"leaf {order} (index {index}): prev {leaf['prev']} does not "
                f"match running chain {prev}"
            )
        expected_chain = chain_hash(prev, str(leaf["leaf_hash"]))
        if leaf["chain"] != expected_chain:
            defects.append(
                f"leaf {order} (index {index}): chain {leaf['chain']} does not "
                f"match recomputed {expected_chain}"
            )
        root_ref = leaf["root_ref"]
        if root_ref is not None and root_ref not in bundle.nodes:
            defects.append(
                f"leaf {order} (index {index}): derivation root {root_ref} "
                "has no node record"
            )
        earlier = by_index.get(index)
        if earlier is None:
            by_index[index] = leaf
        else:
            for key in ("task", "row", "root_ref"):
                if earlier[key] != leaf[key]:
                    defects.append(
                        f"leaf {order} (index {index}): duplicate leaf "
                        f"disagrees with an earlier one on {key!r} -- rows "
                        "are deterministic, so re-runs must agree"
                    )
        prev = str(leaf["chain"])
    return defects


class AuditBundleWriter:
    """Appends the ``repro-audit/1`` chain for one sweep, durably.

    Mirrors :class:`repro.robustness.checkpoint.SweepCheckpoint`: every
    :meth:`append` writes complete records and fsyncs, so a kill at any
    instant loses at most the leaf being written, and only as a torn
    final line.  Opening an existing bundle *resumes* its chain: the
    torn tail (if any) is truncated away, the last intact leaf's chain
    value becomes the running tip, and node records already streamed are
    never re-emitted (the hash-consing store deduplicates across the
    kill).  Chain order is completion order, not index order -- exactly
    like checkpoint rows -- and resumed bundles may carry duplicate
    leaves for an index whose checkpoint row was torn; the verifier
    checks that such re-runs agree.
    """

    def __init__(self, path) -> None:
        self.path = os.fspath(path)
        self._store = DerivationStore()
        self._streamed: Set[str] = set()
        self._indexes: Set[int] = set()
        header = header_record()
        self.genesis = genesis_hash(header)
        self.chain = self.genesis
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            self._resume(header)
        else:
            self._append_line(_canonical(json_pure(header)))

    def _resume(self, header: Dict[str, object]) -> None:
        """Adopt an existing bundle's chain tip; truncate any torn tail."""
        bundle = read_audit_bundle(self.path)
        if bundle.header != header:
            raise AuditError(
                f"audit bundle {self.path!r} has header {bundle.header!r}; "
                "refusing to extend a chain with a different genesis"
            )
        self._streamed.update(bundle.nodes)
        self._indexes.update(bundle.leaf_indexes())
        self.chain = bundle.root
        self._truncate_torn_tail()

    def _truncate_torn_tail(self) -> None:
        """Cut the file back to its last intact record boundary.

        The reader merely *skips* a torn tail; a writer must remove it,
        or the next append would fuse with the partial line into one
        garbage record and corrupt the bundle (the reader only forgives
        damage in final position).
        """
        with open(self.path, "rb") as handle:
            data = handle.read()
        good_end = 0
        start = 0
        while start < len(data):
            newline = data.find(b"\n", start)
            if newline < 0:
                break  # unterminated tail: torn by definition
            line = data[start : newline + 1]
            if line.strip():
                try:
                    json.loads(line.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    break
            good_end = newline + 1
            start = newline + 1
        if good_end < len(data):
            with open(self.path, "r+b") as handle:
                handle.truncate(good_end)

    def _append_line(self, line: str) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def leaf_indexes(self) -> FrozenSet[int]:
        """The task indexes this bundle already has leaves for.

        What the resuming sweep consults to backfill: a checkpoint row
        whose audit leaf was torn away must be re-chained before new
        rows arrive.
        """
        return frozenset(self._indexes)

    def append(
        self,
        index: int,
        task: Dict[str, object],
        row: Dict[str, object],
        derivation: Optional[Derivation] = None,
    ) -> str:
        """Durably chain one completed row; return the new chain tip.

        ``task`` and ``row`` are the JSON-ready payloads the checkpoint
        records (exact ``"p/q"`` strings); ``derivation`` is the row's
        threshold derivation, hash-consed into the bundle's node table
        (only subtrees never streamed before are written).  The leaf is
        written last, after its nodes, so a kill mid-append can only
        lose the leaf -- never produce a leaf whose DAG is missing.
        """
        root_ref: Optional[str] = None
        if derivation is not None:
            root_ref, new_entries = self._store.add_new(derivation.root)
            for ref, payload in new_entries:
                if ref in self._streamed:
                    continue
                self._append_line(
                    _canonical({"type": "node", "ref": ref, "node": payload})
                )
                self._streamed.add(ref)
        leaf = leaf_hash(index, task, row, root_ref)
        record = {
            "type": "leaf",
            "index": index,
            "task": json_pure(task),
            "row": json_pure(row),
            "root_ref": root_ref,
            "leaf_hash": leaf,
            "prev": self.chain,
            "chain": chain_hash(self.chain, leaf),
        }
        self._append_line(_canonical(record))
        self.chain = record["chain"]
        self._indexes.add(index)
        return self.chain
