"""``repro-audit/1`` bundles: chain arithmetic, torn tails, tamper."""

import json
from fractions import Fraction

import pytest

from repro.errors import AuditError
from repro.obs import (
    AUDIT_SCHEMA,
    AuditBundleWriter,
    bundle_root,
    read_audit_bundle,
    verify_bundle,
)
from repro.obs.audit import chain_hash, genesis_hash, header_record, leaf_hash
from repro.obs.provenance import Derivation, DerivationNode


def _derivation(tag):
    root = DerivationNode(
        rule="pr-at-least",
        formula=f"Pr0(coord) >= {tag}",
        point={"bit": 0, "time": 1, "label": "(r0, 1)"},
        holds=True,
        definition="Section 5",
        detail={"inner": Fraction(1, 2)},
        children=(
            DerivationNode(
                rule="cell",
                formula="coord",
                point={"bit": 0, "time": 1, "label": "(r0, 1)"},
                holds=True,
                definition="Section 5",
                detail={"measure": Fraction(1, 2)},
            ),
        ),
    )
    return Derivation(
        assignment="post",
        formula=root.formula,
        point=root.point,
        root=root,
    )


def _task(index):
    return {
        "protocol": "CA1",
        "messengers": index + 1,
        "loss": "1/2",
        "epsilon": "99/100",
    }


def _row(index):
    return {"protocol": "CA1", "messengers": index + 1, "post_threshold": "1/2"}


def _write_bundle(path, count=3, with_derivations=True):
    writer = AuditBundleWriter(path)
    for index in range(count):
        derivation = _derivation(index % 2) if with_derivations else None
        writer.append(index, _task(index), _row(index), derivation)
    return path


class TestChainArithmetic:
    def test_fresh_bundle_verifies_clean(self, tmp_path):
        path = _write_bundle(tmp_path / "s.audit")
        bundle = read_audit_bundle(path)
        assert verify_bundle(bundle) == []
        assert len(bundle.leaves) == 3
        assert bundle.leaf_indexes() == frozenset({0, 1, 2})

    def test_chain_links_from_genesis(self, tmp_path):
        path = _write_bundle(tmp_path / "s.audit", count=2)
        bundle = read_audit_bundle(path)
        prev = bundle.genesis
        assert prev == genesis_hash(bundle.header)
        for leaf in bundle.leaves:
            expected = leaf_hash(
                leaf["index"], leaf["task"], leaf["row"], leaf["root_ref"]
            )
            assert leaf["leaf_hash"] == expected
            assert leaf["prev"] == prev
            assert leaf["chain"] == chain_hash(prev, expected)
            prev = leaf["chain"]
        assert bundle.root == prev

    def test_bundle_root_shortcut(self, tmp_path):
        path = _write_bundle(tmp_path / "s.audit")
        assert bundle_root(path) == read_audit_bundle(path).root

    def test_empty_bundle_root_is_genesis(self, tmp_path):
        path = tmp_path / "empty.audit"
        AuditBundleWriter(path)
        bundle = read_audit_bundle(path)
        assert bundle.root == bundle.genesis == genesis_hash(header_record())

    def test_derivation_nodes_stream_children_first(self, tmp_path):
        path = _write_bundle(tmp_path / "s.audit")
        seen = set()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                if record.get("type") != "node":
                    continue
                for child in record["node"]["children"]:
                    assert child in seen
                seen.add(record["ref"])
        assert seen  # the bundle really streamed nodes


class TestTamper:
    @pytest.mark.parametrize("field", ["index", "task", "row", "root_ref"])
    def test_any_leaf_field_tamper_breaks_the_chain(self, tmp_path, field):
        path = _write_bundle(tmp_path / "s.audit")
        lines = path.read_text().splitlines()
        tampered = []
        for line in lines:
            record = json.loads(line)
            if record.get("type") == "leaf" and record["index"] == 1:
                if field == "index":
                    record["index"] = 7
                elif field == "task":
                    record["task"]["messengers"] = 99
                elif field == "row":
                    record["row"]["post_threshold"] = "1/999"
                else:
                    record["root_ref"] = "0" * 64
            tampered.append(json.dumps(record, sort_keys=True))
        path.write_text("\n".join(tampered) + "\n")
        defects = verify_bundle(read_audit_bundle(path))
        assert defects

    def test_single_bit_node_tamper_is_detected(self, tmp_path):
        path = _write_bundle(tmp_path / "s.audit")
        lines = path.read_text().splitlines()
        tampered = []
        flipped = False
        for line in lines:
            record = json.loads(line)
            if record.get("type") == "node" and not flipped:
                record["node"]["holds"] = not record["node"]["holds"]
                flipped = True
            tampered.append(json.dumps(record, sort_keys=True))
        assert flipped
        path.write_text("\n".join(tampered) + "\n")
        defects = verify_bundle(read_audit_bundle(path))
        assert any("filed under" in defect for defect in defects)

    def test_missing_root_node_record_is_a_defect(self, tmp_path):
        path = _write_bundle(tmp_path / "s.audit", count=1)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        leaf = next(r for r in records if r["type"] == "leaf")
        kept = [r for r in records if r.get("ref") != leaf["root_ref"]]
        path.write_text(
            "\n".join(json.dumps(r, sort_keys=True) for r in kept) + "\n"
        )
        defects = verify_bundle(read_audit_bundle(path))
        assert any("no node record" in defect for defect in defects)

    def test_parent_streamed_before_child_is_a_defect(self, tmp_path):
        path = _write_bundle(tmp_path / "s.audit", count=1)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        nodes = [r for r in records if r["type"] == "node"]
        assert len(nodes) >= 2
        first, second = records.index(nodes[0]), records.index(nodes[1])
        records[first], records[second] = records[second], records[first]
        path.write_text(
            "\n".join(json.dumps(r, sort_keys=True) for r in records) + "\n"
        )
        defects = verify_bundle(read_audit_bundle(path))
        assert any("streamed" in defect for defect in defects)


class TestTornTail:
    def test_reader_tolerates_truncation_at_every_byte(self, tmp_path):
        # the pinned acceptance property: chop the file at EVERY byte
        # boundary; the reader must never crash, and must recover
        # exactly the leaves whose lines survived intact
        path = _write_bundle(tmp_path / "s.audit")
        payload = path.read_text(encoding="utf-8").encode("utf-8")
        header_end = payload.index(b"\n") + 1
        for cut in range(len(payload) + 1):
            torn = tmp_path / "torn.audit"
            torn.write_bytes(payload[:cut])
            if cut < header_end - 1:
                # no intact header yet (the cut at header_end - 1 keeps
                # the full header JSON, just without its newline, and
                # the torn-tail reader rightly accepts that)
                with pytest.raises(AuditError):
                    read_audit_bundle(torn)
                continue
            bundle = read_audit_bundle(torn)
            assert verify_bundle(bundle) == []

    def test_mid_file_garbage_is_a_hard_error(self, tmp_path):
        path = _write_bundle(tmp_path / "s.audit")
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # torn NON-final line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(AuditError):
            read_audit_bundle(path)


class TestWriterResume:
    def test_resume_adopts_the_chain_tip(self, tmp_path):
        path = _write_bundle(tmp_path / "s.audit", count=2)
        tip_before = read_audit_bundle(path).root
        writer = AuditBundleWriter(path)
        assert writer.leaf_indexes() == frozenset({0, 1})
        tip_after = writer.append(2, _task(2), _row(2), _derivation(0))
        bundle = read_audit_bundle(path)
        assert verify_bundle(bundle) == []
        assert bundle.leaves[2]["prev"] == tip_before
        assert bundle.root == tip_after

    def test_resume_truncates_a_torn_tail_before_appending(self, tmp_path):
        path = _write_bundle(tmp_path / "s.audit", count=2)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "leaf", "index"')  # kill mid-write
        writer = AuditBundleWriter(path)
        writer.append(2, _task(2), _row(2), _derivation(0))
        bundle = read_audit_bundle(path)
        assert verify_bundle(bundle) == []
        assert bundle.leaf_indexes() == frozenset({0, 1, 2})
        # the torn fragment is physically gone, not fused into a record
        assert '"index"' not in path.read_text().splitlines()[-1][:24]

    def test_resume_rejects_a_foreign_header(self, tmp_path):
        path = tmp_path / "s.audit"
        header = header_record()
        header["schema"] = "repro-audit/0"
        path.write_text(json.dumps(header, sort_keys=True) + "\n")
        with pytest.raises(AuditError):
            AuditBundleWriter(path)

    def test_duplicate_indexes_must_agree(self, tmp_path):
        # a torn checkpoint tail makes the resumed sweep re-run a task:
        # the bundle then holds two leaves for one index, legitimately
        path = _write_bundle(tmp_path / "s.audit", count=2)
        writer = AuditBundleWriter(path)
        writer.append(1, _task(1), _row(1), _derivation(1))
        bundle = read_audit_bundle(path)
        assert verify_bundle(bundle) == []
        assert len(bundle.leaves) == 3
        assert bundle.leaf_indexes() == frozenset({0, 1})
        # ...but two leaves for one index with different rows are tamper
        writer.append(1, _task(1), {"post_threshold": "1/3"}, None)
        defects = verify_bundle(read_audit_bundle(path))
        assert any("index 1" in defect for defect in defects)

    def test_schema_mismatch_on_read_is_an_error(self, tmp_path):
        path = tmp_path / "s.audit"
        path.write_text(
            json.dumps({"type": "header", "schema": "repro-trace/1"}) + "\n"
        )
        with pytest.raises(AuditError):
            read_audit_bundle(path)
