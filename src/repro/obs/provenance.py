"""Derivation trees for formula evaluations: schema ``repro-explain/1``.

PR 4 made the *cost* of a computation observable; this module makes its
*content* auditable.  A :class:`Derivation` records how the model checker
arrived at a verdict for one formula at one point -- which probability
assignment interpreted ``Pr_i`` (Section 5), which sample space
``S(i, c)`` and cells with which exact measures realised the inner bound
(Section 5's inner-measure semantics), which event witnessed
``K_i^alpha phi`` or which point refuted it (Theorem 7's two directions),
and the iteration snapshots of the ``C_G^alpha`` greatest fixed point
(Section 8).

The data model is deliberately *pure*: every field of every node is
JSON-ready at construction time (exact :class:`fractions.Fraction`
values are stored as their ``"p/q"`` strings, point references as
``{"bit", "time", "label"}`` dicts over the system's shared point
index), so dataclass equality coincides with JSON round-trip equality
and a derivation can be diffed, fingerprinted, and shipped between runs
without any context.  :mod:`repro.logic.explain` is the builder;
``tools/tracediff`` is the consumer.

:class:`ProvenanceRecorder` rides the observe-only recorder protocol of
:mod:`repro.obs.recorder`: it is default-off (the ``NULL_RECORDER``
singleton stays installed unless a caller opts in), collects the
``gfp_iteration`` / ``gfp`` / ``row_provenance`` / ``derivation`` events
the instrumented layers emit, and -- like every recorder -- can never
hand a value back to the code it observes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import ProvenanceError
from .recorder import Recorder

__all__ = [
    "EXPLAIN_SCHEMA",
    "Derivation",
    "DerivationNode",
    "ProvenanceRecorder",
    "derivation_from_json",
    "json_pure",
    "read_derivation",
    "render_derivation",
    "write_derivation",
]

#: Identifier written into (and demanded from) every serialised derivation.
EXPLAIN_SCHEMA = "repro-explain/1"


def json_pure(value):
    """Normalise a value to the *pure* JSON subset derivations are built on.

    Deterministic. Same value in, same normal form out -- no ids, no
    clock, no iteration-order dependence.
    Exact. Floats are rejected outright, so nothing downstream can
    round.

    Section 5's semantics is exact, so its provenance must be too:
    :class:`fractions.Fraction` values become their ``"p/q"`` strings
    (matching :func:`repro.reporting.json_ready` /
    :func:`repro.reporting.fraction_from_json`), tuples become lists, and
    floats are rejected outright -- a float in a derivation would mean a
    probability was rounded, which the reproduction never does.  The
    result round-trips through ``json.dumps``/``json.loads`` unchanged,
    which is what makes dataclass equality on derivation nodes coincide
    with equality of their serialised forms.
    """
    if isinstance(value, bool) or value is None or isinstance(value, int):
        return value
    if isinstance(value, float):
        raise ProvenanceError(
            f"floats are banned in derivations (got {value!r}); "
            "encode exact Fractions as 'p/q' strings"
        )
    if isinstance(value, Fraction):
        return str(value)
    if isinstance(value, str):
        return value
    if isinstance(value, Mapping):
        return {str(key): json_pure(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_pure(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return [json_pure(item) for item in sorted(value, key=repr)]
    raise ProvenanceError(
        f"value of type {type(value).__name__} cannot appear in a derivation"
    )


@dataclass(frozen=True, eq=True)
class DerivationNode:
    """One step of a derivation: a formula verdict and its justification.

    ``rule`` names the semantic clause applied (``"knows"``,
    ``"pr-at-least"``, ``"gfp"``, ...), ``definition`` cites the paper
    statement the clause instantiates (Section 5's inner-measure
    semantics, Section 8's fixed-point definition, ...), and ``detail``
    carries the rule-specific evidence -- sample-space cells with exact
    ``"p/q"`` measures, witness masks, counterexample point references,
    gfp iteration snapshots.  ``detail`` and ``children`` are normalised
    through :func:`json_pure` at construction, so two nodes are equal
    exactly when their serialised forms are.
    """

    rule: str
    formula: str
    point: Optional[Dict]
    holds: bool
    definition: str
    detail: Dict = field(default_factory=dict)
    children: Tuple["DerivationNode", ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "point", json_pure(self.point))
        object.__setattr__(self, "detail", json_pure(self.detail))
        object.__setattr__(self, "children", tuple(self.children))

    def json_ready(self) -> Dict:
        """The node as a plain JSON-ready dict (schema ``repro-explain/1``)."""
        return {
            "rule": self.rule,
            "formula": self.formula,
            "point": self.point,
            "holds": self.holds,
            "definition": self.definition,
            "detail": self.detail,
            "children": [child.json_ready() for child in self.children],
        }

    def walk(self):
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass(frozen=True, eq=True)
class Derivation:
    """A complete derivation: formula, point, assignment, and proof tree.

    ``assignment`` is the *name* of the probability assignment that
    interpreted ``Pr_i`` (``post`` / ``fut`` / ``opp(j)`` / ``prior`` --
    the Section 6 lattice), because the choice of assignment is exactly
    what the paper says a probabilistic-knowledge claim is relative to.
    """

    assignment: str
    formula: str
    point: Dict
    root: DerivationNode

    def __post_init__(self) -> None:
        object.__setattr__(self, "point", json_pure(self.point))

    @property
    def holds(self) -> bool:
        """The top-level verdict."""
        return self.root.holds

    def json_ready(self) -> Dict:
        """The full ``repro-explain/1`` payload."""
        return {
            "schema": EXPLAIN_SCHEMA,
            "assignment": self.assignment,
            "formula": self.formula,
            "point": self.point,
            "holds": self.root.holds,
            "root": self.root.json_ready(),
        }

    def fingerprint(self) -> str:
        """A content hash stable across processes and runs.

        Deterministic. The hash is a pure function of the derivation's
        content -- ``tools/tracediff`` depends on it.

        Every field of a derivation is deterministic (no timestamps, no
        ids), so the SHA-256 of the canonical sorted-key serialisation
        identifies the derivation itself: two runs that derived the same
        verdict the same way collide, two that diverged anywhere do not.
        ``tools/tracediff`` aligns derivations by this value.
        """
        canonical = json.dumps(self.json_ready(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _node_from_json(payload, path: str) -> DerivationNode:
    if not isinstance(payload, Mapping):
        raise ProvenanceError(f"derivation node at {path} is not a JSON object")
    missing = {"rule", "formula", "holds", "definition"} - set(payload)
    if missing:
        raise ProvenanceError(
            f"derivation node at {path} is missing fields {sorted(missing)}"
        )
    children_payload = payload.get("children", [])
    if not isinstance(children_payload, (list, tuple)):
        raise ProvenanceError(f"derivation node at {path} has non-list children")
    children = tuple(
        _node_from_json(child, f"{path}.children[{index}]")
        for index, child in enumerate(children_payload)
    )
    return DerivationNode(
        rule=payload["rule"],
        formula=payload["formula"],
        point=payload.get("point"),
        holds=bool(payload["holds"]),
        definition=payload["definition"],
        detail=payload.get("detail", {}),
        children=children,
    )


def derivation_from_json(payload) -> Derivation:
    """Decode a ``repro-explain/1`` payload back into a :class:`Derivation`.

    The inverse of :meth:`Derivation.json_ready` -- the round trip is
    exact, including every ``"p/q"`` cell measure (Section 5 semantics is
    never rounded).  Raises :class:`~repro.errors.ProvenanceError` on a
    missing or foreign schema marker or a malformed node tree.
    """
    if isinstance(payload, str):
        try:
            payload = json.loads(payload)
        except json.JSONDecodeError as error:
            raise ProvenanceError(f"derivation payload is not JSON: {error}") from None
    if not isinstance(payload, Mapping):
        raise ProvenanceError("derivation payload is not a JSON object")
    schema = payload.get("schema")
    if schema != EXPLAIN_SCHEMA:
        raise ProvenanceError(
            f"payload schema is {schema!r}, expected {EXPLAIN_SCHEMA!r}"
        )
    for key in ("assignment", "formula", "point", "root"):
        if key not in payload:
            raise ProvenanceError(f"derivation payload is missing {key!r}")
    return Derivation(
        assignment=payload["assignment"],
        formula=payload["formula"],
        point=payload["point"],
        root=_node_from_json(payload["root"], "root"),
    )


def write_derivation(derivation: Derivation, path) -> str:
    """Serialise one derivation to pretty-printed ``repro-explain/1`` JSON.

    The file holds a single JSON document (not JSONL): a derivation is
    one auditable object, the Section 5 evidence for one verdict.
    Returns the rendered text.
    """
    text = json.dumps(derivation.json_ready(), indent=2, sort_keys=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return text


def read_derivation(path) -> Derivation:
    """Load a ``repro-explain/1`` file written by :func:`write_derivation`.

    Strict by design (unlike the tolerant trace reader): a derivation is
    a single JSON document whose Section 5 evidence is only meaningful
    complete, so any truncation or schema mismatch raises
    :class:`~repro.errors.ProvenanceError`.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise ProvenanceError(f"cannot read derivation file: {error}") from None
    return derivation_from_json(text)


_VERDICT = {True: "holds", False: "fails"}


def _render_node(node: DerivationNode, lines: List[str], indent: int) -> None:
    pad = "  " * indent
    where = ""
    if node.point is not None:
        where = f" @ {node.point.get('label', node.point)}"
    lines.append(f"{pad}[{_VERDICT[node.holds]}] {node.formula}{where}")
    lines.append(f"{pad}    rule: {node.rule}  --  {node.definition}")
    for key in sorted(node.detail):
        value = node.detail[key]
        if isinstance(value, list) and len(value) > 4:
            value = f"[{len(value)} entries]"
        lines.append(f"{pad}    {key}: {value}")
    for child in node.children:
        _render_node(child, lines, indent + 1)


def render_derivation(derivation: Derivation) -> str:
    """A human-readable account of the derivation, one node per block.

    Each step cites the paper definition it instantiates (the
    inner-measure semantics of Section 5, the ``K_i^alpha`` reading of
    Section 5, the greatest-fixed-point definition of Section 8, ...), so
    the rendering reads as a checkable proof sketch rather than a dump.
    """
    lines = [
        f"derivation ({EXPLAIN_SCHEMA})",
        f"  formula:    {derivation.formula}",
        f"  point:      {derivation.point.get('label', derivation.point)}",
        f"  assignment: {derivation.assignment}   (Section 6 lattice)",
        f"  verdict:    {_VERDICT[derivation.root.holds]}",
        "",
    ]
    _render_node(derivation.root, lines, 1)
    return "\n".join(lines)


#: Event kinds a :class:`ProvenanceRecorder` captures; everything else is
#: counted but not stored, so attaching one to a chaos sweep cannot
#: accumulate unbounded unrelated events.
CAPTURED_KINDS = frozenset(
    {"gfp_iteration", "gfp", "row_provenance", "derivation"}
)


class ProvenanceRecorder(Recorder):
    """Collect semantic provenance events without perturbing anything.

    Observe-only like every recorder: the instrumented code (the gfp
    loops of :class:`repro.logic.semantics.Model`, the opt-in sweep rows
    of :func:`repro.attack.sweep.guarantee_sweep`) cannot read anything
    back, so an evaluation under a live ``ProvenanceRecorder`` is
    byte-identical to an uninstrumented one -- the differential suite
    pins that.  Default-off: nothing in the library installs one; the
    ``NULL_RECORDER`` singleton keeps the cost at an identity check.
    """

    __slots__ = ("events", "event_counts")

    def __init__(self) -> None:
        #: Captured ``(kind, fields)`` pairs in emission order.
        self.events: List[Tuple[str, Dict]] = []
        #: Every event kind seen (captured or not) with its count.
        self.event_counts: Dict[str, int] = {}

    def event(self, kind: str, **fields) -> None:
        self.event_counts[kind] = self.event_counts.get(kind, 0) + 1
        if kind in CAPTURED_KINDS:
            self.events.append((kind, dict(fields)))

    # -- folded views ----------------------------------------------------

    def of_kind(self, kind: str) -> List[Dict]:
        """The field dicts of every captured event of one kind, in order."""
        return [fields for seen, fields in self.events if seen == kind]

    @property
    def gfp_iterations(self) -> List[Dict]:
        """Per-iteration fixpoint snapshots (Section 8 gfp computation)."""
        return self.of_kind("gfp_iteration")

    @property
    def derivations(self) -> List[Derivation]:
        """Every complete derivation shipped through an event payload."""
        collected: List[Derivation] = []
        for kind in ("derivation", "row_provenance"):
            for fields in self.of_kind(kind):
                payload = fields.get("derivation")
                if payload is not None:
                    collected.append(derivation_from_json(payload))
        return collected
