"""reproflow: whole-program dataflow analyzer (the second static tier).

Where ``tools.reprolint`` judges one file at a time, this tier builds a
cross-module symbol table and call graph over ``src/repro``, runs a
fixpoint effect inference (clock reads, unseeded randomness, global
mutation, io, float taint -- each with a witness chain), and checks four
interprocedural invariants in the same registry/suppression framework:

* RL009 -- every function reachable from a task payload (run_tasks,
  parallel_map, the sweep builder registry) is transitively free of
  clock reads, unseeded randomness, and global mutation.
* RL010 -- no call edge from the exact subpackages (probability, core,
  betting, logic) to a float-returning function outside them;
  ``fractionutil`` stays the sanctioned boundary, and RL001 keeps the
  fast intra-file pass.
* RL011 -- pool payloads are module-level callables: no lambdas, no
  nested functions, nothing the spawn start method cannot pickle.
* RL012 -- docstrings declaring ``Deterministic.`` / ``Exact.``
  contracts match the inferred effect summaries.

Extraction is cached per file keyed by sha256
(``.reproflow-cache.json``); the fixpoint is always recomputed.  The
``--report`` artifact (``repro-flow/1``) is content-only and diffable.

Usage::

    python -m tools.reproflow src/repro              # human output
    python -m tools.reproflow --json src/repro       # machine-readable
    python -m tools.reproflow --report flow.json src/repro
    python -m tools.reproflow --explain RL009
    python -m tools.reproflow --list-rules

Suppress with ``# reproflow: disable=RL009`` (file-wide on a standalone
line, per line as a trailing comment); ``# reprolint:`` spellings are
honoured too -- one rule-id namespace across both tiers.
"""

from .cache import DEFAULT_CACHE_PATH, SummaryCache
from .engine import FlowReport, analyze_paths, package_identity
from .extract import EXTRACT_SCHEMA, extract_module, sha256_of
from .program import Program
from .report import REPORT_SCHEMA, build_report
from .rules.base import FLOW_REGISTRY, FlowRule, POOL_ENTRY_POINTS

__all__ = [
    "DEFAULT_CACHE_PATH",
    "EXTRACT_SCHEMA",
    "FLOW_REGISTRY",
    "FlowReport",
    "FlowRule",
    "POOL_ENTRY_POINTS",
    "Program",
    "REPORT_SCHEMA",
    "SummaryCache",
    "analyze_paths",
    "build_report",
    "extract_module",
    "package_identity",
    "sha256_of",
]
